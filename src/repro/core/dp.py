"""The scalable DP planning tier (ROADMAP item 2, ``tier="dp"``).

The exact tier enumerates GPU-group *permutations* and solves a MILP (or
hill climb) per candidate — fine for the paper's <= 10-GPU clusters,
hopeless for fleet-scale instances.  This module plans the same joint
partition / quantization / micro-batch problem in polynomial time:

1. **Orderings without permutations** —
   :func:`~repro.core.enumeration.scalable_orderings` builds a handful of
   heuristically sorted stage-group sequences in ``O(D log D)``.  Small
   instances keep the exact tier's :func:`candidate_orderings` so the two
   tiers search the same space (and agree bit-for-bit where the
   assignment is forced).
2. **Flow-style depth relaxation** — for each ordering the pipeline
   depth (how many leading groups become stages) is ranked by a
   fractional water-filling relaxation of the analytic latency formula
   (:func:`flow_relaxed_span`): layer mass splits across stages in
   proportion to their rates, memory and integrality dropped.  Only the
   best few depths are solved, Helix-style.
3. **Segment DP** — stages are contiguous layer ranges, so the min-bits
   partition is a classic min-max contiguous-partition DP over layer
   groups (``O(stages * groups^2)``), memory-checked per stage.
4. **Bit upgrades + polish** — per-stage greedy bit upgrades by quality
   gain (the MCKP direction of :func:`greedy_adabits`) meet the quality
   budget, then a capped :func:`bitwidth_transfer` hill climb polishes
   partition boundaries and bitwidths against the true objective.

No MILP solve happens anywhere on this path.  Every solved candidate also
gets the admissible :func:`~repro.core.search.analytic_lower_bound`
(MCKP + structural bounds), and the reported
:attr:`DPOutcome.gap_bound` — best DP score over the best lower bound —
certifies the optimality gap over the enumerated candidate set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..costmodel.latency import LatencyCostModel
from ..hardware.cluster import ClusterSpec
from ..models import layers as _L
from ..models.architectures import ModelSpec
from ..obs import metrics, trace
from ..pipeline.stage import CostModelTiming
from ..workloads.spec import BatchWorkload
from .config import PlannerConfig
from .costs import (
    PlanningProblem,
    StageGroup,
    build_problem,
    group_layers,
    problem_invariants,
)
from .enumeration import (
    candidate_orderings,
    microbatch_candidates,
    scalable_orderings,
)
from .heuristic import bitwidth_transfer
from .ilp import ILPSolution
from .search import CandidateStat, SearchStats, analytic_lower_bound

__all__ = [
    "DPOutcome",
    "dp_search",
    "flow_relaxed_span",
    "segment_partition",
]


@dataclass(frozen=True)
class DPOutcome:
    """What the DP tier hands back to the planner's shared tail."""

    #: Candidates ranked by score, same tuple shape as the exact search.
    ranked: List[tuple]
    stats: Tuple[CandidateStat, ...]
    search: SearchStats
    #: ``best_score / best_lower_bound`` over the enumerated candidates
    #: (>= 1); ``None`` when nothing was solved or the bound degenerates.
    gap_bound: Optional[float]


def flow_relaxed_span(
    u_pre: np.ndarray,
    u_dec: np.ndarray,
    comm_pre: np.ndarray,
    comm_dec: np.ndarray,
    num_layers: int,
    prefill_jobs: int,
    mu_dec: int,
    output_len: int,
) -> float:
    """Fractional (flow-style) relaxation of the analytic pipeline span.

    Layer mass splits continuously across stages so every stage's compute
    time equalizes at ``L / sum(1/u_j)`` (water-filling on rates) —
    memory, integrality and per-stage constants dropped.  Mirrors
    :meth:`PlanningProblem.latency_estimate` on that relaxed assignment,
    so it ranks pipeline depths (more stages cut the bottleneck, more
    boundaries add communication) in real seconds.
    """
    inv_pre = float(np.sum(1.0 / np.maximum(u_pre, 1e-12)))
    inv_dec = float(np.sum(1.0 / np.maximum(u_dec, 1e-12)))
    b_pre = num_layers / inv_pre
    b_dec = num_layers / inv_dec
    n_stages = len(u_pre)
    comm_pre_max = float(comm_pre.max()) if comm_pre.size else 0.0
    comm_dec_max = float(comm_dec.max()) if comm_dec.size else 0.0
    prefill_span = n_stages * b_pre + float(comm_pre.sum()) + (
        prefill_jobs - 1
    ) * max(b_pre, comm_pre_max)
    round_trip = n_stages * b_dec + float(comm_dec.sum())
    decode_span = (output_len - 1) * max(
        mu_dec * max(b_dec, comm_dec_max), round_trip
    )
    return prefill_span + decode_span


def _prefix_depths(
    ordering: Tuple[StageGroup, ...],
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: BatchWorkload,
    timing: CostModelTiming,
    config: PlannerConfig,
    max_depth: int,
) -> List[int]:
    """Pipeline depths worth solving, ranked by the flow relaxation.

    Depths shallower than the min-bits capacity floor are skipped; the
    survivors are scored with :func:`flow_relaxed_span` and the best
    ``config.dp_prefix_candidates`` (always including ``max_depth``) are
    solved exactly by the segment DP.
    """
    min_bits = min(config.bit_choices)
    per_layer = _L.weight_storage_bytes(spec, min_bits)
    need = spec.num_layers * per_layer
    chunk = workload.chunk_len
    avg_ctx = workload.prompt_len + workload.output_len // 2
    mbs = microbatch_candidates(workload.batch, config.microbatch_candidates)
    eta = xi = mbs[-1]
    mu_dec = -(-workload.batch // xi)
    prefill_jobs = -(-workload.batch // eta) * workload.kappa

    by_id = {d.device_id: d for d in cluster.devices}
    u_pre = np.array(
        [
            timing.prefill(sg.gpu, min_bits, eta, chunk, sg.tp_degree)
            for sg in ordering[:max_depth]
        ]
    )
    u_dec = np.array(
        [
            timing.decode(sg.gpu, min_bits, xi, avg_ctx, sg.tp_degree)
            for sg in ordering[:max_depth]
        ]
    )
    pre_bytes = _L.hidden_state_bytes(spec, eta, chunk)
    dec_bytes = _L.hidden_state_bytes(spec, xi, 1)
    comm_pre = np.zeros(max(max_depth - 1, 0))
    comm_dec = np.zeros(max(max_depth - 1, 0))
    for j in range(max_depth - 1):
        link = cluster.link_between(
            by_id[ordering[j].device_ids[0]],
            by_id[ordering[j + 1].device_ids[0]],
        )
        comm_pre[j] = link.transfer_time(pre_bytes)
        comm_dec[j] = link.transfer_time(dec_bytes)

    capacity = 0.0
    scored: List[Tuple[float, int]] = []
    for n in range(1, max_depth + 1):
        capacity += ordering[n - 1].capacity_bytes
        if capacity < need:
            continue
        span = flow_relaxed_span(
            u_pre[:n],
            u_dec[:n],
            comm_pre[: n - 1],
            comm_dec[: n - 1],
            spec.num_layers,
            prefill_jobs,
            mu_dec,
            workload.output_len,
        )
        scored.append((span, n))
    scored.sort()
    depths = {n for _, n in scored[: config.dp_prefix_candidates]}
    depths.add(max_depth)  # the full prefix is always a candidate
    return sorted(depths)


def segment_partition(
    problem: PlanningProblem,
) -> Optional[List[int]]:
    """Min-max contiguous partition of the layer groups at min bits.

    ``dp[j][g]`` is the best achievable bottleneck stage load placing the
    first ``g`` layer groups on the first ``j + 1`` stages (every stage
    non-empty, per-stage min-bits memory respected).  The load proxy
    weighs prefill and decode stage times by how often the pipeline
    replays them — the hill-climb polish then optimizes the true
    objective.  Returns the per-group stage assignment or ``None`` when
    no memory-feasible partition exists.
    """
    G, N = problem.n_groups, problem.n_stages
    if G < N:
        return None
    w_pre = float(problem.prefill_jobs)
    w_dec = float(max(problem.workload.output_len - 1, 1) * problem.mu_dec)
    # Prefix sums over layer groups of min-bits stage time / memory.
    pre_cs = np.zeros((N, G + 1))
    dec_cs = np.zeros((N, G + 1))
    for j in range(N):
        pre_cs[j, 1:] = np.cumsum(problem.l_pre[:, j, 0])
        dec_cs[j, 1:] = np.cumsum(problem.l_dec[:, j, 0])
    mem_cs = np.concatenate([[0.0], np.cumsum(problem.mem[:, 0])])

    def load(a: int, b: int, j: int) -> float:
        t_pre = problem.const_pre[j] + pre_cs[j, b] - pre_cs[j, a]
        t_dec = problem.const_dec[j] + dec_cs[j, b] - dec_cs[j, a]
        return w_pre * t_pre + w_dec * t_dec

    def fits(a: int, b: int, j: int) -> bool:
        return mem_cs[b] - mem_cs[a] <= problem.capacity[j] + 1e-6

    INF = float("inf")
    dp = np.full((N, G + 1), INF)
    parent = np.zeros((N, G + 1), dtype=int)
    for g in range(1, G - N + 2):
        if fits(0, g, 0):
            dp[0, g] = load(0, g, 0)
    for j in range(1, N):
        # First g leaves room for one group per remaining stage.
        for g in range(j + 1, G - (N - 1 - j) + 1):
            best, arg = INF, -1
            for a in range(j, g):
                if dp[j - 1, a] >= INF or not fits(a, g, j):
                    continue
                val = max(dp[j - 1, a], load(a, g, j))
                if val < best:
                    best, arg = val, a
            dp[j, g] = best
            parent[j, g] = arg
    if not np.isfinite(dp[N - 1, G]):
        return None
    stage = [0] * G
    g = G
    for j in range(N - 1, 0, -1):
        a = int(parent[j, g])
        for i in range(a, g):
            stage[i] = j
        g = a
    return stage


def _upgrade_bits(
    problem: PlanningProblem,
    stage: Sequence[int],
    quality_budget: Optional[float],
) -> Optional[List[int]]:
    """Greedy per-stage bit upgrades by quality gain within memory slack.

    The MCKP direction of :func:`greedy_adabits`, applied to the DP
    partition: every group starts at min bits and the upgrade with the
    best indicator reduction that still fits its stage is taken until no
    upgrade fits.  ``None`` when the quality budget stays violated.
    """
    G, N, K = problem.n_groups, problem.n_stages, problem.n_bits
    kidx = [0] * G
    for j in range(N):
        gs = [g for g in range(G) if stage[g] == j]
        slack = float(
            problem.capacity[j] - sum(problem.mem[g, 0] for g in gs)
        )
        while True:
            best_g, best_gain, best_cost = -1, 0.0, 0.0
            for g in gs:
                k = kidx[g]
                if k + 1 >= K:
                    continue
                cost = problem.mem[g, k + 1] - problem.mem[g, k]
                if cost > slack:
                    continue
                gain = problem.omega[g, k] - problem.omega[g, k + 1]
                if gain > best_gain:
                    best_g, best_gain, best_cost = g, gain, cost
            if best_g < 0:
                break
            kidx[best_g] += 1
            slack -= best_cost
    quality = float(sum(problem.omega[g, kidx[g]] for g in range(G)))
    if quality_budget is not None and quality > quality_budget + 1e-12:
        return None
    return kidx


def solve_segment_dp(
    problem: PlanningProblem,
    theta: float,
    quality_budget: Optional[float],
    config: PlannerConfig,
) -> Optional[ILPSolution]:
    """One DP-tier solve: partition DP + bit upgrades + hill-climb polish."""
    stage = segment_partition(problem)
    if stage is None:
        return None
    kidx = _upgrade_bits(problem, stage, quality_budget)
    if kidx is None:
        return None
    bits = tuple(problem.bit_choices[k] for k in kidx)
    sol = ILPSolution(
        assign_stage=tuple(stage),
        assign_bits=bits,
        objective=problem.latency_estimate(stage, bits)
        + theta * problem.quality_sum(bits),
        latency_s=problem.latency_estimate(stage, bits),
        quality=problem.quality_sum(bits),
        solve_time_s=0.0,
        status="dp",
    )
    if config.dp_polish_iters > 0:
        polished = bitwidth_transfer(
            problem,
            theta=theta,
            quality_budget=quality_budget,
            time_limit_s=config.time_limit_s,
            max_iters=config.dp_polish_iters,
            start=sol,
        )
        if polished is not None:
            sol = replace(polished, status="dp")
    return sol


def dp_search(
    spec: ModelSpec,
    cluster: ClusterSpec,
    config: PlannerConfig,
    omega_layers: np.ndarray,
    cost_model_for_kv: Callable[[int], LatencyCostModel],
    workload: BatchWorkload,
) -> DPOutcome:
    """Run the DP tier over the pruned candidate grid.

    Enumerates (KV bits, ordering, pipeline depth, eta, xi) exactly like
    the exact tier's outer loops — same loop order, so equal-score ties
    resolve identically — but solves each candidate with the polynomial
    segment DP instead of a MILP.  Small clusters reuse the exact tier's
    ordering enumeration (full depth only), so where the assignment is
    forced the two tiers return bit-identical plans.
    """
    t0 = time.perf_counter()
    cfg = config
    theta = 0.0 if cfg.quality_budget is not None else cfg.theta
    n_layer_groups = len(group_layers(spec.num_layers, cfg.group_size))
    small = len(cluster.devices) <= cfg.auto_exact_max_devices
    if small:
        orderings = candidate_orderings(
            cluster, enable_tp=cfg.enable_tp, max_orderings=cfg.max_orderings
        )
    else:
        orderings = scalable_orderings(
            cluster, enable_tp=cfg.enable_tp, max_orderings=cfg.max_orderings
        )
    mbs = microbatch_candidates(workload.batch, cfg.microbatch_candidates)
    kv_choices = cfg.kv_bit_choices or (cfg.bit_kv,)
    min_weights = spec.num_layers * _L.weight_storage_bytes(
        spec, min(cfg.bit_choices)
    )

    stats: List[CandidateStat] = []
    candidates: List[tuple] = []
    enumerated = solved = infeasible = 0
    bound_time = 0.0
    cum_solve = 0.0
    best_lb = float("inf")
    tightness: List[float] = []

    for bit_kv in kv_choices:
        cost_model = cost_model_for_kv(bit_kv)
        timing = CostModelTiming(cost_model=cost_model, spec=spec)
        for ordering in orderings:
            max_depth = min(len(ordering), n_layer_groups)
            if small:
                # Mirror the exact tier's search space: every ordering
                # uses all of its stage groups.
                depths = [len(ordering)]
            else:
                depths = _prefix_depths(
                    ordering, cluster, spec, workload, timing, cfg, max_depth
                )
            for depth in depths:
                prefix = ordering[:depth]
                if min_weights > sum(sg.capacity_bytes for sg in prefix):
                    continue
                invariants = problem_invariants(
                    spec,
                    cluster,
                    prefix,
                    workload,
                    omega_layers,
                    cfg.bit_choices,
                    group_size=cfg.group_size,
                    bit_kv=bit_kv,
                )
                key = tuple(sg.key() for sg in prefix)
                for eta in mbs:
                    for xi in mbs:
                        if cfg.tie_microbatches and xi != eta:
                            continue
                        enumerated += 1
                        problem = build_problem(
                            spec,
                            cluster,
                            prefix,
                            workload,
                            cost_model,
                            omega_layers,
                            eta,
                            xi,
                            cfg.bit_choices,
                            group_size=cfg.group_size,
                            bit_kv=bit_kv,
                            phase_blind=cfg.phase_blind,
                            timing=timing,
                            invariants=invariants,
                        )
                        ts = time.perf_counter()
                        sol = solve_segment_dp(
                            problem, theta, cfg.quality_budget, cfg
                        )
                        cum_solve += time.perf_counter() - ts
                        solved += 1
                        if sol is None:
                            infeasible += 1
                            stats.append(
                                CandidateStat(
                                    key, eta, xi, "infeasible", 0.0, 0.0, 0.0
                                )
                            )
                            continue
                        tb = time.perf_counter()
                        lb = analytic_lower_bound(
                            problem, theta, cfg.quality_budget
                        )
                        bound_time += time.perf_counter() - tb
                        best_lb = min(best_lb, lb)
                        stats.append(
                            CandidateStat(
                                key,
                                eta,
                                xi,
                                sol.status,
                                sol.latency_s,
                                sol.quality,
                                sol.solve_time_s,
                            )
                        )
                        score = sol.latency_s + theta * sol.quality
                        if score > 0:
                            tightness.append(min(lb / score, 1.0))
                        candidates.append(
                            (score, sol, prefix, problem.group_sizes,
                             eta, xi, bit_kv)
                        )

    candidates.sort(key=lambda c: c[0])  # stable: ties keep loop order
    gap_bound: Optional[float] = None
    if candidates and np.isfinite(best_lb) and best_lb > 0:
        gap_bound = float(candidates[0][0] / best_lb)
    search = SearchStats(
        enumerated=enumerated,
        solved=solved,
        pruned=0,
        infeasible=infeasible,
        cache_hits=0,
        cache_misses=0,
        lp_bounds=0,
        warm_starts=0,
        mean_bound_tightness=(
            float(np.mean(tightness)) if tightness else 0.0
        ),
        wall_time_s=time.perf_counter() - t0,
        cum_solve_time_s=cum_solve,
        bound_time_s=bound_time,
        parallelism=1,
    )
    if trace.enabled:
        metrics.counter("planner.dp_searches").inc()
        metrics.counter("planner.dp_candidates").inc(enumerated)
    return DPOutcome(
        ranked=candidates,
        stats=tuple(stats),
        search=search,
        gap_bound=gap_bound,
    )
