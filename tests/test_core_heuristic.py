"""Tests for the bitwidth-transfer heuristic."""

import numpy as np
import pytest

from repro.core import (
    StageGroup,
    bitwidth_transfer,
    brute_force_solve,
    build_problem,
    solve_adabits,
    solve_partition_ilp,
)
from repro.core.heuristic import _State, greedy_adabits
from repro.quant import normalized_indicator_table
from repro.workloads import BatchWorkload

BITS = (4, 16)


@pytest.fixture(scope="module")
def problem(opt13b, small_cluster, cost_model_13b):
    ordering = tuple(
        StageGroup(device_ids=(d.device_id,), gpu=d.gpu)
        for d in small_cluster.devices
    )
    omega = normalized_indicator_table(opt13b, BITS)
    return build_problem(
        opt13b, small_cluster, ordering,
        BatchWorkload(batch=8, prompt_len=256, output_len=32),
        cost_model_13b, omega, 4, 4, BITS, group_size=5,
    )


def test_heuristic_feasible_and_contiguous(problem):
    sol = bitwidth_transfer(problem, theta=10.0)
    assert sol is not None
    assert list(sol.assign_stage) == sorted(sol.assign_stage)
    assert problem.memory_ok(sol.assign_stage, sol.assign_bits)
    assert sol.status == "heuristic"


def test_heuristic_near_optimal(problem):
    heu = bitwidth_transfer(problem, theta=10.0)
    ref = brute_force_solve(problem, theta=10.0)
    obj_h = problem.latency_estimate(heu.assign_stage, heu.assign_bits) + 10 * heu.quality
    obj_r = problem.latency_estimate(ref.assign_stage, ref.assign_bits) + 10 * ref.quality
    assert obj_h <= obj_r * 1.15


def test_heuristic_improves_on_adabits_start(problem):
    ada = solve_adabits(problem)
    heu = bitwidth_transfer(problem, theta=10.0, start=ada)
    obj_ada = problem.latency_estimate(
        ada.assign_stage, ada.assign_bits
    ) + 10 * ada.quality
    assert heu.objective <= obj_ada + 1e-9


def test_heuristic_respects_quality_budget(problem):
    budget = 2.0
    sol = bitwidth_transfer(problem, theta=0.0, quality_budget=budget)
    if sol is not None:
        assert sol.quality <= budget + 1e-9


def test_heuristic_faster_than_ilp_at_scale(opt30b, cluster5):
    """The Table VI scalability claim at a moderately large instance."""
    import time

    from repro.costmodel.latency import LatencyCostModel
    from repro.simgpu import Profiler

    gpus = {d.gpu.name: d.gpu for d in cluster5.devices}
    cm = LatencyCostModel(opt30b)
    cm.fit(gpus.values(), (3, 4, 8, 16), Profiler(seed=0))
    ordering = tuple(
        StageGroup(device_ids=(d.device_id,), gpu=d.gpu)
        for d in cluster5.devices
    )
    omega = normalized_indicator_table(opt30b, (3, 4, 8, 16))
    problem = build_problem(
        opt30b, cluster5, ordering,
        BatchWorkload(batch=32, prompt_len=512, output_len=100),
        cm, omega, 8, 8, (3, 4, 8, 16), group_size=1,
    )
    t0 = time.perf_counter()
    heu = bitwidth_transfer(problem, theta=10.0)
    t_heu = time.perf_counter() - t0
    t0 = time.perf_counter()
    ilp = solve_partition_ilp(problem, theta=10.0, time_limit_s=60.0)
    t_ilp = time.perf_counter() - t0
    assert heu is not None and ilp is not None
    assert t_heu < t_ilp
    obj_h = problem.latency_estimate(heu.assign_stage, heu.assign_bits) + 10 * heu.quality
    obj_i = problem.latency_estimate(ilp.assign_stage, ilp.assign_bits) + 10 * ilp.quality
    assert obj_h <= obj_i * 1.25


def test_greedy_adabits_feasible(problem):
    sol = greedy_adabits(problem)
    assert sol is not None
    assert problem.memory_ok(sol.assign_stage, sol.assign_bits)
    assert list(sol.assign_stage) == sorted(sol.assign_stage)
    assert sol.status == "greedy-adabits"


def test_greedy_adabits_prefers_high_bits_when_room(problem):
    sol = greedy_adabits(problem)
    # The V100 stage has room for FP16 layers; some should be FP16.
    assert 16 in sol.assign_bits


def test_greedy_adabits_infeasible_when_too_small(opt30b, cost_model_13b):
    from repro.costmodel.latency import LatencyCostModel
    from repro.hardware import make_cluster
    from repro.simgpu import Profiler

    cluster = make_cluster("tiny", [("P100-12G", 1)])
    cm = LatencyCostModel(opt30b)
    cm.fit([cluster.devices[0].gpu], BITS, Profiler(seed=0))
    ordering = (StageGroup(device_ids=(0,), gpu=cluster.devices[0].gpu),)
    omega = normalized_indicator_table(opt30b, BITS)
    problem = build_problem(
        opt30b, cluster, ordering,
        BatchWorkload(batch=8, prompt_len=256, output_len=32),
        cm, omega, 4, 4, BITS, group_size=4,
    )
    assert greedy_adabits(problem) is None


def test_state_incremental_consistency(problem):
    """Incremental apply/revert must match a fresh rebuild."""
    G = problem.n_groups
    stage = [0] * (G // 2) + [1] * (G - G // 2)
    kidx = [0] * G
    st = _State.build(problem, stage, kidx)
    changes = [(0, 0, 1), (G - 1, 1, 1)]
    saved = [(st.stage[g], st.kidx[g]) for g, _, _ in changes]
    st.apply(problem, changes)
    fresh = _State.build(problem, st.stage, st.kidx)
    assert np.allclose(st.t_pre, fresh.t_pre)
    assert np.allclose(st.t_dec, fresh.t_dec)
    assert np.allclose(st.mem, fresh.mem)
    assert st.quality == pytest.approx(fresh.quality)
    st.revert(problem, changes, saved)
    back = _State.build(problem, stage, kidx)
    assert np.allclose(st.t_pre, back.t_pre)
    assert st.quality == pytest.approx(back.quality)
