"""``repro.api``: the unified façade over planner, simulator and runtime.

One object — :class:`Session` — drives the paper's whole pipeline:

    from repro import Session, BatchWorkload

    sess = Session("opt-30b", cluster=5, trace_path="trace.jsonl")
    wl = BatchWorkload(batch=32, prompt_len=512, output_len=100)
    result = sess.plan(wl)          # PlannerResult
    sim = sess.simulate()           # PipelineSimResult for that plan
    gen = sess.serve()              # GenerationResult (TinyLM proxy)
    sess.close()                    # writes trace.jsonl + metrics

All three phases thread the *same* :class:`~repro.obs.Tracer`, so one
JSONL trace covers plan -> simulate -> serve end to end.  Without a
tracer the session adds nothing beyond the direct calls (the
observability fast path is one attribute check).

Every result implements the :class:`Summary` protocol — ``to_dict()``
(JSON-safe, round-trippable through :mod:`repro.serialization`),
``throughput_tokens_s`` and ``duration_s`` — so heterogeneous results
can be logged, persisted and compared uniformly.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Optional, Protocol, Union, runtime_checkable

import numpy as np

from .core import PlannerConfig, PlannerResult, SplitQuantPlanner
from .hardware import ClusterSpec, table_iii_cluster
from .models import ModelSpec, get_model
from .obs import Tracer, flame_summary, metrics, use_tracer
from .pipeline import (
    DegradedSimResult,
    OnlineConfig,
    OnlineSimResult,
    PipelineSimResult,
    simulate_online,
    simulate_plan,
)
from .plan import ExecutionPlan, InfeasibleError
from .quality import TinyLM, TinyLMConfig
from .runtime import FaultPlan, GenerationResult, PipelineEngine
from .workloads import ArrivalTrace, BatchWorkload

__all__ = ["Session", "Summary"]


@runtime_checkable
class Summary(Protocol):
    """The uniform result-object protocol.

    Implemented by :class:`~repro.core.planner.PlannerResult`,
    :class:`~repro.pipeline.simulator.PipelineSimResult`,
    :class:`~repro.pipeline.simulator.DegradedSimResult`,
    :class:`~repro.pipeline.online.OnlineSimResult`,
    :class:`~repro.fleet.simulator.FleetSimResult`,
    :class:`~repro.fleet.online.OnlineFleetResult` and
    :class:`~repro.runtime.engine.GenerationResult`: a JSON-safe
    :meth:`to_dict` (round-trippable via :mod:`repro.serialization`),
    the paper's headline :attr:`throughput_tokens_s` metric, and
    :attr:`duration_s` wall-clock.
    """

    def to_dict(self) -> Dict[str, Any]: ...

    @property
    def throughput_tokens_s(self) -> float: ...

    @property
    def duration_s(self) -> float: ...


class Session:
    """Plan, simulate and serve one (model, cluster) configuration.

    Parameters
    ----------
    model:
        A :class:`~repro.models.architectures.ModelSpec` or a registered
        model name (``"opt-30b"``).
    cluster:
        A :class:`~repro.hardware.cluster.ClusterSpec` or a Table-III
        cluster index (``5`` -> 3x T4 + 1x V100).
    config:
        Planner knobs; defaults to :class:`PlannerConfig()`.
    tracer:
        An explicit :class:`~repro.obs.Tracer` to thread through every
        phase.  ``None`` with ``trace_path`` set creates a fresh enabled
        tracer; ``None`` without a path leaves tracing to whatever is
        globally installed (e.g. ``SPLITQUANT_TRACE``).
    trace_path:
        Where :meth:`close` writes the JSONL trace (plus a
        ``<path>.metrics.json`` metrics snapshot).
    """

    def __init__(
        self,
        model: Union[str, ModelSpec],
        cluster: Union[int, ClusterSpec],
        config: PlannerConfig = PlannerConfig(),
        tracer: Optional[Tracer] = None,
        trace_path: Optional[str] = None,
        cost_model=None,
        omega_layers=None,
    ) -> None:
        self.spec = get_model(model) if isinstance(model, str) else model
        self.cluster = (
            table_iii_cluster(cluster)
            if isinstance(cluster, int)
            else cluster
        )
        self.config = config
        self.trace_path = trace_path
        self._cost_model = cost_model
        self._omega_layers = omega_layers
        if tracer is None and trace_path is not None:
            tracer = Tracer(enabled=True)
        self.tracer = tracer
        self._planner: Optional[SplitQuantPlanner] = None
        self._last_workload: Optional[BatchWorkload] = None
        self._last_result: Optional[PlannerResult] = None
        self._proxy: Optional[TinyLM] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Tracer plumbing
    # ------------------------------------------------------------------

    def _scope(self):
        """Activate this session's tracer for one phase (if it has one)."""
        if self.tracer is None:
            return contextlib.nullcontext()
        return use_tracer(self.tracer)

    @property
    def planner(self) -> SplitQuantPlanner:
        """The lazily built (and cached) planner for this session."""
        if self._planner is None:
            with self._scope():
                self._planner = SplitQuantPlanner(
                    self.spec,
                    self.cluster,
                    self.config,
                    cost_model=self._cost_model,
                    omega_layers=self._omega_layers,
                )
        return self._planner

    # ------------------------------------------------------------------
    # The three phases
    # ------------------------------------------------------------------

    def plan(
        self,
        workload: BatchWorkload,
        *,
        tier: Optional[str] = None,
        objective: Optional[str] = None,
        budget: Optional[float] = None,
    ) -> Optional[PlannerResult]:
        """Run the SplitQuant assigner; remembers the plan for
        :meth:`simulate` / :meth:`serve`.  ``None`` when nothing fits.

        ``tier`` selects the planning tier for this call (``"exact"``,
        ``"dp"`` or ``"auto"``); ``None`` defers to ``config.tier``.
        ``objective`` (``"throughput"``, ``"energy"``, ``"cost"``) and
        ``budget`` (a J/token or $/Mtoken ceiling for the latter two)
        select the planning objective; ``None`` defers to the config.
        See :meth:`repro.core.SplitQuantPlanner.plan`.
        """
        with self._scope():
            result = self.planner.plan(
                workload, tier=tier, objective=objective, budget=budget
            )
        self._last_workload = workload
        self._last_result = result
        return result

    def replan(
        self,
        delta,
        prev: Optional[PlannerResult] = None,
        *,
        workload: Optional[BatchWorkload] = None,
    ) -> PlannerResult:
        """Incremental re-solve after a cluster or job change.

        ``delta`` is a :class:`repro.core.ClusterDelta` or
        :class:`repro.core.JobDelta`; ``prev`` defaults to the session's
        last planning result.  The returned result becomes the session's
        remembered plan.  See :meth:`repro.core.SplitQuantPlanner.replan`.
        """
        previous = prev if prev is not None else self._last_result
        if previous is None:
            raise ValueError(
                "no previous result: pass prev= or call Session.plan() first"
            )
        with self._scope():
            result = self.planner.replan(
                previous, delta, workload=workload
            )
        if result.workload is not None:
            self._last_workload = result.workload
        self._last_result = result
        return result

    def simulate(
        self,
        plan: Optional[Union[ExecutionPlan, PlannerResult]] = None,
        workload: Optional[BatchWorkload] = None,
        check_memory: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        detection_overhead_s: float = 0.0,
        sim_backend: str = "auto",
    ) -> Union[PipelineSimResult, DegradedSimResult]:
        """Simulate a plan (defaults to the last one).

        ``sim_backend`` selects the engine: ``"event"`` forces the
        discrete-event loop, ``"fast"`` the closed-form steady-state
        recurrence (bit-identical results), ``"auto"`` picks the fast
        path whenever it is exact.  With ``fault_plan`` the
        degraded-recovery mirror (:func:`repro.pipeline.simulate_degraded`)
        runs instead and a :class:`DegradedSimResult` is returned
        (fault timelines are inherently event-driven, so ``sim_backend``
        does not apply there).
        """
        ex_plan = self._resolve_plan(plan)
        wl = workload or self._last_workload
        if wl is None:
            raise ValueError(
                "no workload: pass one or call Session.plan() first"
            )
        with self._scope():
            if fault_plan is not None:
                from .pipeline import simulate_degraded

                return simulate_degraded(
                    ex_plan, self.cluster, self.spec, wl, fault_plan,
                    check_memory=check_memory,
                    detection_overhead_s=detection_overhead_s,
                )
            return simulate_plan(
                ex_plan, self.cluster, self.spec, wl,
                check_memory=check_memory, sim_backend=sim_backend,
            )

    def score_plans(
        self,
        plans,
        workload: Optional[BatchWorkload] = None,
        check_memory: bool = False,
    ):
        """Score a whole plan frontier in one batched fastsim sweep.

        ``plans`` is a sequence of :class:`ExecutionPlan` or
        :class:`PlannerResult` objects (mixed is fine); each is simulated
        against ``workload`` (default: the last :meth:`plan` workload)
        on this session's cluster via
        :func:`repro.pipeline.evaluate_plans` — the vectorized max-plus
        evaluator, bit-identical to the per-plan fast backend.  Returns
        one :class:`PipelineSimResult` per plan, in order.  Plans the
        fast path cannot represent exactly fall back to the event engine
        with :attr:`PipelineSimResult.backend_reason` explaining why.
        """
        from .pipeline import PlanCase, evaluate_plans

        resolved = []
        for p in plans:
            if isinstance(p, PlannerResult):
                resolved.append(p.plan)
            elif isinstance(p, ExecutionPlan):
                resolved.append(p)
            else:
                raise TypeError(
                    f"plans must contain ExecutionPlan or PlannerResult, "
                    f"got {type(p).__name__}"
                )
        wl = workload or self._last_workload
        if wl is None:
            raise ValueError(
                "no workload: pass one or call Session.plan() first"
            )
        cases = [
            PlanCase(plan=p, cluster=self.cluster, spec=self.spec, workload=wl)
            for p in resolved
        ]
        with self._scope():
            return evaluate_plans(cases, check_memory=check_memory)

    def serve(
        self,
        workload: Optional[BatchWorkload] = None,
        plan: Optional[Union[ExecutionPlan, PlannerResult]] = None,
        prompts: Optional[np.ndarray] = None,
        n_tokens: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        microbatch: Optional[int] = None,
        max_batch: int = 8,
        max_prompt_len: int = 16,
        max_tokens: int = 8,
    ) -> GenerationResult:
        """Execute the plan through the threaded pipeline runtime.

        Real model specs (OPT-30B and friends) cannot run in-process, so
        the runtime executes a **TinyLM proxy**: a small real transformer
        with the *same layer count* as the planned model, partitioned and
        quantized exactly as the plan dictates.  Default prompts are a
        seeded slice of the workload (capped at ``max_batch`` requests x
        ``max_prompt_len`` tokens, ``max_tokens`` generated) so serving
        stays tractable; pass ``prompts``/``n_tokens`` to override.

        Generation is greedy and bit-exact against the single-process
        reference on the same quantized weights — including through
        injected faults (``fault_plan``), which trigger the engine's
        degrade-and-replan recovery.
        """
        ex_plan = self._resolve_plan(plan)
        wl = workload or self._last_workload
        if prompts is None or n_tokens is None:
            if wl is None:
                raise ValueError(
                    "no workload: pass one (or prompts + n_tokens), or "
                    "call Session.plan() first"
                )
        model = self._proxy_model(ex_plan)
        if prompts is None:
            rng = np.random.default_rng(self.config.seed)
            prompts = rng.integers(
                0,
                model.config.vocab,
                size=(
                    min(wl.batch, max_batch),
                    min(wl.prompt_len, max_prompt_len),
                ),
            )
        else:
            prompts = np.asarray(prompts)
        if n_tokens is None:
            n_tokens = min(wl.output_len, max_tokens)
        if prompts.shape[1] + n_tokens > model.config.max_seq:
            raise ValueError(
                f"prompt ({prompts.shape[1]}) + n_tokens ({n_tokens}) "
                f"exceeds the proxy's max_seq ({model.config.max_seq}); "
                "pass shorter prompts or fewer tokens"
            )
        with self._scope():
            with PipelineEngine(
                model,
                ex_plan,
                fault_plan=fault_plan,
                recv_timeout_s=5.0,
                stall_timeout_s=0.3,
            ) as engine:
                return engine.generate(
                    prompts, n_tokens=n_tokens, microbatch=microbatch
                )

    def serve_online(
        self,
        arrivals: "ArrivalTrace",
        plan: Optional[Union[ExecutionPlan, PlannerResult]] = None,
        config: Optional["OnlineConfig"] = None,
        check_memory: bool = True,
        sim_backend: str = "auto",
    ) -> "OnlineSimResult":
        """Simulate online serving of an arrival stream on this session.

        ``arrivals`` is an :class:`~repro.workloads.arrivals.ArrivalTrace`
        (build one with :func:`~repro.workloads.poisson_trace`,
        :func:`~repro.workloads.diurnal_trace`,
        :func:`~repro.workloads.bursty_trace`, or
        :func:`~repro.workloads.closed_batch_trace`); ``plan`` defaults
        to the last :meth:`plan` result.  ``config`` is an
        :class:`~repro.pipeline.OnlineConfig` controlling chunking,
        continuous-batching group size, and KV/SLO admission.
        ``sim_backend`` picks the engine (``"event"``, ``"fast"``, or
        the default ``"auto"``) — the backends are bit-identical, so
        this is a speed knob, not a fidelity one.  Returns an
        :class:`~repro.pipeline.OnlineSimResult` (a :class:`Summary`)
        with per-request TTFT/TPOT/latency percentiles.
        """
        ex_plan = self._resolve_plan(plan)
        with self._scope():
            return simulate_online(
                ex_plan, self.cluster, self.spec, arrivals,
                config=config, check_memory=check_memory,
                sim_backend=sim_backend,
            )

    def schedule_fleet(
        self,
        jobs=None,
        inventory: Optional[Dict[str, int]] = None,
        allocator: str = "beam",
        fleet_config=None,
        simulate: bool = True,
        parallelism: int = 1,
        pool_gpus: int = 24,
        n_jobs: int = 8,
        objective: str = "throughput",
        spot_types=(),
        price_book=None,
    ):
        """Schedule a multi-job queue onto an idle-GPU fleet inventory.

        The fleet-level entry point (:mod:`repro.fleet`): carves
        ``inventory`` (default: a :func:`~repro.hardware.fleet.
        schedulable_inventory` slice of the seeded Fig. 1 fleet sample)
        into per-job heterogeneous GPU groups with the chosen allocator
        (``"beam"`` lookahead or the ``"greedy"`` bin-packing baseline),
        plans each group with the SplitQuant planner, and — with
        ``simulate=True`` — replays the schedule through the
        discrete-event fleet simulator.

        ``jobs`` defaults to a seeded queue
        (:func:`repro.fleet.make_job_queue` with ``n_jobs`` and the
        session seed).  Returns a :class:`~repro.fleet.FleetSimResult`
        (a :class:`Summary`) when simulating, otherwise the raw
        :class:`~repro.fleet.FleetSchedule`.  The session's tracer is
        threaded through scheduling and simulation.

        ``objective="cost"`` makes the allocator pack by tokens/s per
        rental $/hr; ``spot_types`` bills those GPU types at the default
        price book's spot rate (they become preemptible via
        :meth:`repro.fleet.FleetScheduler.preempt_spot`); ``price_book``
        overrides pricing wholesale
        (:class:`repro.costmodel.PriceBook`).
        """
        from .fleet import FleetScheduler, make_job_queue, simulate_schedule
        from .hardware.fleet import sample_fleet, schedulable_inventory

        seed = getattr(self.config, "seed", 0)
        with self._scope():
            if inventory is None:
                inventory = schedulable_inventory(
                    sample_fleet(seed=seed), pool_gpus=pool_gpus
                )
            if jobs is None:
                jobs = make_job_queue(n_jobs=n_jobs, seed=seed)
            scheduler = FleetScheduler(
                inventory,
                config=fleet_config,
                allocator=allocator,
                parallelism=parallelism,
                objective=objective,
                spot_types=spot_types,
                price_book=price_book,
            )
            schedule = scheduler.schedule(jobs)
            if not simulate:
                return schedule
            return simulate_schedule(
                schedule, price_book=scheduler.price_book
            )

    def fleet_stats(self, n_gpus: int = 10_000):
        """The seeded Fig. 1 fleet sample behind :meth:`schedule_fleet`.

        Returns the :class:`~repro.hardware.fleet.FleetStats` drawn at
        the session seed — the baseline that
        :meth:`~repro.fleet.FleetSimResult.idle_recovery` measures
        reclaimed idle GPU-hours against.
        """
        from .hardware.fleet import sample_fleet

        return sample_fleet(n_gpus=n_gpus, seed=getattr(self.config, "seed", 0))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _resolve_plan(
        self, plan: Optional[Union[ExecutionPlan, PlannerResult]]
    ) -> ExecutionPlan:
        if isinstance(plan, PlannerResult):
            return plan.plan
        if isinstance(plan, ExecutionPlan):
            return plan
        if plan is not None:
            raise TypeError(
                f"plan must be an ExecutionPlan or PlannerResult, "
                f"got {type(plan).__name__}"
            )
        if self._last_result is None:
            raise InfeasibleError(
                "no plan: call Session.plan() first (or pass one) — "
                "the last plan() returned None or was never run"
            )
        return self._last_result.plan

    def _proxy_model(self, plan: ExecutionPlan) -> TinyLM:
        """TinyLM stand-in with the planned model's layer count (cached)."""
        if (
            self._proxy is None
            or self._proxy.config.layers != plan.num_layers
        ):
            self._proxy = TinyLM(
                TinyLMConfig(
                    vocab=128,
                    layers=plan.num_layers,
                    hidden=64,
                    ffn=192,
                    heads=4,
                    max_seq=64,
                    seed=self.config.seed,
                )
            )
        return self._proxy

    # ------------------------------------------------------------------
    # Observability output
    # ------------------------------------------------------------------

    @property
    def metrics(self):
        """The process-wide metrics registry (always available)."""
        return metrics

    def trace_jsonl(self) -> str:
        """The session trace as JSONL (empty without a tracer)."""
        return "" if self.tracer is None else self.tracer.to_jsonl()

    def flame(self, max_depth: int = 8) -> str:
        """Text flame summary of this session's trace."""
        if self.tracer is None:
            return "(no tracer installed)\n"
        return flame_summary(self.tracer.records, max_depth=max_depth)

    def save_trace(self, path: Optional[str] = None) -> Optional[str]:
        """Write the JSONL trace (+ ``.metrics.json``); returns the path."""
        target = path or self.trace_path
        if target is None or self.tracer is None:
            return None
        self.tracer.write(target)
        with open(str(target) + ".metrics.json", "w") as fh:
            fh.write(metrics.to_json() + "\n")
        return str(target)

    def close(self) -> None:
        """Flush the trace to :attr:`trace_path` (idempotent)."""
        if not self._closed:
            self.save_trace()
            self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
