"""Shared builders for the golden-trace regression fixtures.

A golden trace is the canonical JSON rendering
(:func:`repro.serialization.dumps_degraded_result`) of one degraded
discrete-event simulation.  The scenarios below are fully deterministic:
pure-arithmetic :class:`~repro.pipeline.stage.RooflineTiming` (no fitted
least-squares models, no RNG) and floats rounded to 12 significant
digits at serialization.  ``tests/test_golden_traces.py`` compares the
fixture files byte-for-byte; ``scripts/regen_golden_traces.py``
regenerates them after an intentional simulator change.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict

from repro.hardware import make_cluster
from repro.models import get_model
from repro.pipeline import simulate_degraded
from repro.pipeline.stage import RooflineTiming
from repro.plan import uniform_plan
from repro.runtime import FaultPlan, FaultSpec
from repro.serialization import dumps_degraded_result
from repro.workloads import BatchWorkload

DATA_DIR = Path(__file__).parent / "data"


def _base(num_stages: int):
    spec = get_model("opt-13b")
    if num_stages == 2:
        cluster = make_cluster(
            "golden", [("A100-40G", 1), ("V100-32G", 1)]
        )
        groups = [((0,), "A100-40G"), ((1,), "V100-32G")]
    else:
        cluster = make_cluster(
            "golden", [("A100-40G", 2), ("V100-32G", 2)]
        )
        groups = [
            ((0,), "A100-40G"),
            ((1,), "A100-40G"),
            ((2,), "V100-32G"),
            ((3,), "V100-32G"),
        ]
    plan = uniform_plan(
        model_name=spec.name,
        num_layers=spec.num_layers,
        device_groups=groups,
        bits=4,
        prefill_microbatch=8,
        decode_microbatch=8,
    )
    wl = BatchWorkload(batch=16, prompt_len=512, output_len=32)
    return spec, cluster, plan, wl


def _trace(fault_plan: FaultPlan, num_stages: int = 2) -> str:
    spec, cluster, plan, wl = _base(num_stages)
    res = simulate_degraded(
        plan,
        cluster,
        spec,
        wl,
        fault_plan,
        timing=RooflineTiming(spec=spec, bit_kv=plan.bit_kv),
        check_memory=False,
        detection_overhead_s=0.5,
    )
    return dumps_degraded_result(res)


def trace_kill_mid_decode() -> str:
    """Kill the last stage at decode step 10 of 32 (the canonical demo)."""
    return _trace(FaultPlan.single_kill(stage=1, step=10))


def trace_kill_prefill() -> str:
    """Kill stage 0 while prefill micro-batch 1 is in flight."""
    return _trace(
        FaultPlan(specs=(FaultSpec("kill", 0, "prefill", 1),))
    )


def trace_drop_rebuild() -> str:
    """A lost message at decode step 5: rebuild on the same plan."""
    return _trace(FaultPlan(specs=(FaultSpec("drop", 0, "decode", 5),)))


def trace_slow_absorbed() -> str:
    """A 2s transient slowdown, absorbed without recovery."""
    return _trace(
        FaultPlan(specs=(FaultSpec("slow", 1, "decode", 8, delay_s=2.0),))
    )


def trace_double_kill_four_stages() -> str:
    """Two successive kills on a 4-stage pipeline (two replans)."""
    return _trace(
        FaultPlan(
            specs=(
                FaultSpec("kill", 3, "decode", 6),
                FaultSpec("kill", 0, "decode", 20),
            )
        ),
        num_stages=4,
    )


GOLDEN_SCENARIOS: Dict[str, Callable[[], str]] = {
    "degraded_kill_mid_decode": trace_kill_mid_decode,
    "degraded_kill_prefill": trace_kill_prefill,
    "degraded_drop_rebuild": trace_drop_rebuild,
    "degraded_slow_absorbed": trace_slow_absorbed,
    "degraded_double_kill_4stage": trace_double_kill_four_stages,
}


def fixture_path(name: str) -> Path:
    return DATA_DIR / f"{name}.json"


def regenerate_all() -> Dict[str, Path]:
    """(Re)write every fixture; returns the paths written."""
    DATA_DIR.mkdir(parents=True, exist_ok=True)
    written = {}
    for name, build in GOLDEN_SCENARIOS.items():
        path = fixture_path(name)
        path.write_text(build())
        written[name] = path
    return written
