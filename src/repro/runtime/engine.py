"""The master engine: plan-driven pipelined generation over TinyLM.

The master performs centralized pre/post-processing — token embedding on
the way in, final norm + logit projection and sampling on the way out —
while stage workers hold the quantized decoder layers (Fig. 6's runtime).
Prefill micro-batches are pushed through the pipeline back-to-back; decode
steps iterate with the autoregressive feedback at the master.

Generation is greedy and bit-exact against a single-process reference on
the same quantized weights, which the test suite asserts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..plan import ExecutionPlan
from ..quality.tinylm import TinyLM
from .comm import Channel
from .worker import RegroupMessage, StageMessage, StageWorker


@dataclass(frozen=True)
class GenerationResult:
    """Tokens plus runtime telemetry."""

    tokens: np.ndarray  # (B, prompt + generated)
    prefill_time_s: float
    decode_time_s: float
    stage_busy_s: Tuple[float, ...]
    microbatch: int

    @property
    def total_time_s(self) -> float:
        return self.prefill_time_s + self.decode_time_s


def reference_generate(
    model: TinyLM, prompts: np.ndarray, n_tokens: int
) -> np.ndarray:
    """Single-process greedy generation (the correctness oracle)."""
    prompts = np.asarray(prompts)
    logits, cache = model.prefill(prompts)
    out = [prompts]
    cur = logits.argmax(axis=-1)
    out.append(cur[:, None])
    for _ in range(n_tokens - 1):
        logits, cache = model.decode_step(cur, cache)
        cur = logits.argmax(axis=-1)
        out.append(cur[:, None])
    return np.concatenate(out, axis=1)


class PipelineEngine:
    """Distributed (threaded) inference runtime for one execution plan."""

    def __init__(self, model: TinyLM, plan: ExecutionPlan) -> None:
        if plan.num_layers != model.config.layers:
            raise ValueError(
                f"plan has {plan.num_layers} layers, model has "
                f"{model.config.layers}"
            )
        self.plan = plan
        #: The quantized model (kept for reference checks and the LM head).
        self.model = model.quantized(list(plan.bits_per_layer))
        self.config = model.config
        self._channels: List[Channel] = []
        self._workers: List[StageWorker] = []
        prev = Channel("master->stage0")
        self._channels.append(prev)
        for j, st in enumerate(plan.stages):
            nxt = Channel(f"stage{j}->" + ("master" if j == plan.num_stages - 1
                                           else f"stage{j + 1}"))
            worker = StageWorker(
                stage_index=j,
                config=self.config,
                layers=self.model.layers[st.layer_start : st.layer_end],
                in_ch=prev,
                out_ch=nxt,
            )
            self._channels.append(nxt)
            self._workers.append(worker)
            prev = nxt
        self._in = self._channels[0]
        self._out = self._channels[-1]
        self._started = False

    def start(self) -> None:
        if not self._started:
            for w in self._workers:
                w.start()
            self._started = True

    def shutdown(self) -> None:
        if self._started:
            self._in.close()
            for w in self._workers:
                w.join(timeout=10.0)
            self._started = False

    def __enter__(self) -> "PipelineEngine":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def _check_workers(self) -> None:
        for w in self._workers:
            if w.error is not None:
                raise RuntimeError(f"{w.name} failed") from w.error

    def _round_trip(
        self, jobs: List[StageMessage]
    ) -> Dict[int, np.ndarray]:
        """Push jobs through the pipeline; collect outputs by micro-batch."""
        for msg in jobs:
            self._in.send(msg)
        results: Dict[int, np.ndarray] = {}
        for _ in jobs:
            try:
                out = self._out.recv()
            except Exception:
                self._check_workers()
                raise
            results[out.mb_id] = out.hidden
        return results

    @staticmethod
    def _slices(batch: int, mb: int) -> List[slice]:
        return [slice(s, min(s + mb, batch)) for s in range(0, batch, mb)]

    def _switch_phase(
        self, pre_slices: List[slice], dec_slices: List[slice]
    ) -> None:
        """Regroup the workers' KV caches from eta- to xi-micro-batches."""
        groups = []
        for d in dec_slices:
            parts = []
            for p_idx, p in enumerate(pre_slices):
                lo = max(d.start, p.start)
                hi = min(d.stop, p.stop)
                if lo < hi:
                    parts.append((p_idx, lo - p.start, hi - p.start))
            groups.append(tuple(parts))
        self._in.send(RegroupMessage(groups=tuple(groups)))
        try:
            echoed = self._out.recv()
        except Exception:
            self._check_workers()
            raise
        if not isinstance(echoed, RegroupMessage):
            raise RuntimeError("phase switch desynchronized the pipeline")

    def generate(
        self,
        prompts: np.ndarray,
        n_tokens: int,
        microbatch: Optional[int] = None,
    ) -> GenerationResult:
        """Greedy generation of ``n_tokens`` per request.

        Prefill runs at the plan's eta and decode at its xi; between the
        phases the master regroups the stage KV caches (the dynamic
        micro-batch adaptation of Fig. 6).  Passing ``microbatch`` forces
        one size for both phases.
        """
        if not self._started:
            raise RuntimeError("engine not started; use `with engine:`")
        prompts = np.asarray(prompts)
        B, T = prompts.shape
        eta = microbatch or min(self.plan.prefill_microbatch, B)
        xi = microbatch or min(self.plan.decode_microbatch, B)
        pre_slices = self._slices(B, eta)
        dec_slices = self._slices(B, xi)
        for w in self._workers:
            w.reset_caches()

        # Prefill: all micro-batches in flight back-to-back.
        t0 = time.perf_counter()
        jobs = [
            StageMessage(
                phase="prefill",
                mb_id=i,
                hidden=self.model.embed_tokens(prompts[sl]),
            )
            for i, sl in enumerate(pre_slices)
        ]
        hiddens = self._round_trip(jobs)
        cur = np.empty(B, dtype=np.int64)
        for i, sl in enumerate(pre_slices):
            logits = self.model.lm_head(hiddens[i][:, -1:, :])[:, 0, :]
            cur[sl] = logits.argmax(axis=-1)
        if pre_slices != dec_slices:
            self._switch_phase(pre_slices, dec_slices)
        prefill_time = time.perf_counter() - t0
        generated = [cur.copy()]

        # Decode: per-step feedback at the master, micro-batches pipelined.
        t1 = time.perf_counter()
        for step in range(1, n_tokens):
            pos = T + step - 1
            jobs = [
                StageMessage(
                    phase="decode",
                    mb_id=i,
                    hidden=self.model.embed_tokens(
                        cur[sl].reshape(-1, 1), start_pos=pos
                    ),
                )
                for i, sl in enumerate(dec_slices)
            ]
            hiddens = self._round_trip(jobs)
            for i, sl in enumerate(dec_slices):
                logits = self.model.lm_head(hiddens[i][:, -1:, :])[:, 0, :]
                cur[sl] = logits.argmax(axis=-1)
            generated.append(cur.copy())
        decode_time = time.perf_counter() - t1
        self._check_workers()

        tokens = np.concatenate(
            [prompts] + [g[:, None] for g in generated], axis=1
        )
        return GenerationResult(
            tokens=tokens,
            prefill_time_s=prefill_time,
            decode_time_s=decode_time,
            stage_busy_s=tuple(w.busy_time for w in self._workers),
            microbatch=xi,
        )
