"""The candidate search engine: memoized, bound-pruned, parallel solving.

``SplitQuantPlanner.plan()`` must enumerate device orderings x (eta, xi)
micro-batch pairs x KV bitwidths and run an exact MILP (or the
bitwidth-transfer heuristic) per candidate inside the paper's 60 s solver
budget (Table VI).  Done naively that is a serial quadruple loop that
rebuilds every cost tensor from scratch and solves every candidate even
when it provably cannot win — and planner wall-clock is the dominant cost
of the whole Fig. 9-12 benchmark sweep.  This module is the fast path.
Four layers:

1. **Memoized cost kernels** — unit layer costs depend only on
   ``(gpu, tp, bits, micro-batch, chunk/context, bit_kv)``, so identical
   ``(gpu, tp)`` stage groups across orderings and repeated ``(eta, xi)``
   pairs hit a :class:`~repro.pipeline.stage.MemoizedTiming` cache, and
   the (eta, xi)-independent tensors of each subproblem (memory table,
   grouped indicator, capacities, links) are materialized once per
   (ordering, bit_kv) via :func:`~repro.core.costs.problem_invariants`.

2. **Admissible lower-bound pruning** — before paying a solve, each
   candidate gets a cheap analytic bound (multiple-choice-knapsack LP
   relaxation of the bit assignment + pipeline structural terms) and,
   when the exact ILP backend is in use, the LP relaxation of the full
   MILP.  Both bounds never exceed the score of any feasible solution,
   so skipping candidates whose bound exceeds the incumbent provably
   cannot change the chosen plan.  Candidates are solved best-bound-first
   so the incumbent tightens early.

3. **Parallel candidate solving** — solves fan out over a
   ``concurrent.futures`` thread pool (``PlannerConfig.parallelism``,
   default serial) while problem construction and bound evaluation stay
   on the coordinating thread; the reduction sorts on
   ``(score, enumeration index)`` so the chosen plan is bit-identical to
   the serial search regardless of completion order.

4. **Observability** — every candidate's fate (solved / pruned /
   infeasible), its bound, cache hit rates and wall-vs-cumulative solve
   time are reported through :class:`SearchStats` /
   :class:`CandidateStat` and surfaced on ``PlannerResult``.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..costmodel.latency import LatencyCostModel
from ..hardware.cluster import ClusterSpec
from ..models.architectures import ModelSpec
from ..models.layers import weight_storage_bytes
from ..obs import DEFAULT_FRACTION_BUCKETS, metrics, trace
from ..pipeline.stage import CostModelTiming, MemoizedTiming
from ..workloads.spec import BatchWorkload
from .config import PlannerConfig
from .costs import (
    PlanningProblem,
    StageGroup,
    build_problem,
    problem_invariants,
)
from .enumeration import candidate_orderings, microbatch_candidates
from .ilp import ILPSolution, solve_adabits, solve_partition_lp_relaxation


@dataclass(frozen=True)
class CandidateStat:
    """Solve record for one (ordering, eta, xi, bit_kv) candidate."""

    ordering_key: Tuple[Tuple[str, int], ...]
    eta: int
    xi: int
    status: str
    latency_s: float
    quality: float
    solve_time_s: float
    #: Admissible lower bound on the candidate's score (0 when unused).
    bound_s: float = 0.0


@dataclass(frozen=True)
class SearchStats:
    """Aggregate observability counters for one search."""

    #: Candidates enumerated (after the total-capacity ordering skip).
    enumerated: int
    #: Candidates actually handed to the ILP / heuristic backend.
    solved: int
    #: Candidates skipped because their lower bound beat the incumbent.
    pruned: int
    #: Solved candidates the backend declared infeasible.
    infeasible: int
    #: Unit-cost timing cache hits / misses across all KV cost models.
    cache_hits: int
    cache_misses: int
    #: Exact-MILP LP relaxations evaluated for pruning.
    lp_bounds: int
    #: Adabits warm-start solves performed (heuristic mode).
    warm_starts: int
    #: Mean (bound / score) over solved candidates — 1.0 is a perfect
    #: bound, small values mean the bound is loose and prunes little.
    mean_bound_tightness: float
    #: Wall-clock of the whole search vs. cumulative backend solve time.
    wall_time_s: float
    cum_solve_time_s: float
    #: Time spent computing bounds (analytic + LP).
    bound_time_s: float
    parallelism: int
    #: Incumbent scores seeded by the bulk frontier-scoring stage before
    #: any solve (heuristic mode only).
    seeded_incumbents: int = 0
    #: Batched scoring sweeps run (search seeding + planner verify).
    batches: int = 0
    #: Plans scored by batched sweeps (frontier members + verified top-k).
    batched_plans_scored: int = 0

    def to_dict(self) -> Dict[str, float]:
        """JSON-safe dict (the ``repro.serialization`` round-trip form)."""
        from dataclasses import asdict

        return asdict(self)

    def publish_metrics(self) -> None:
        """Feed the process-wide metrics registry from this search."""
        metrics.counter("planner.candidates_enumerated").inc(self.enumerated)
        metrics.counter("planner.candidates_solved").inc(self.solved)
        metrics.counter("planner.candidates_pruned_total").inc(self.pruned)
        metrics.counter("planner.candidates_infeasible").inc(self.infeasible)
        metrics.counter("planner.timing_cache_hits").inc(self.cache_hits)
        metrics.counter("planner.timing_cache_misses").inc(self.cache_misses)
        metrics.counter("planner.warm_starts").inc(self.warm_starts)
        metrics.counter("planner.batched_plans_scored").inc(
            self.batched_plans_scored
        )
        metrics.histogram("planner.search_wall_s").observe(self.wall_time_s)
        metrics.histogram(
            "planner.bound_tightness", DEFAULT_FRACTION_BUCKETS
        ).observe(self.mean_bound_tightness)


#: Relative slack applied before pruning on a bound, so solver-side float
#: tolerance in the LP relaxation can never evict a candidate that ties
#: the incumbent (pruning stays conservative, parity stays exact).
_PRUNE_REL_SLACK = 1e-7
_PRUNE_ABS_SLACK = 1e-9


def mckp_lp_min_cost(
    cost: np.ndarray, weight: np.ndarray, budget: float
) -> float:
    """LP bound of the multiple-choice knapsack: minimize total cost with
    every group picking one choice, subject to total weight <= budget.

    Classic Sinha-Zoltners/Zemel construction: per group keep the Pareto
    frontier of (weight, cost) choices, take its convex hull, then greedily
    buy weight reduction from the globally cheapest hull segments until the
    budget is met (fractionally on the last segment).  Returns ``inf`` when
    even the maximal reduction cannot meet the budget — the integer problem
    is then infeasible too.
    """
    base = 0.0
    need = -float(budget)
    segments: List[Tuple[float, float]] = []  # (cost per unit weight, dw)
    for g in range(cost.shape[0]):
        pts = sorted(zip(weight[g].tolist(), cost[g].tolist()))
        # Pareto filter: scanning weight ascending, keep strictly
        # improving (decreasing) costs.
        frontier: List[Tuple[float, float]] = []
        best_c = float("inf")
        for w, c in pts:
            if c < best_c:
                frontier.append((w, c))
                best_c = c
        frontier.reverse()  # weight desc, cost asc; [0] = min-cost choice
        w0, c0 = frontier[0]
        base += c0
        need += w0
        # Lower convex hull: slopes (dc / d(-w)) must increase.
        hull = [(w0, c0)]
        for w, c in frontier[1:]:
            while len(hull) >= 2:
                w1, c1 = hull[-1]
                w2, c2 = hull[-2]
                if (c - c1) * (w2 - w1) <= (c1 - c2) * (w1 - w):
                    hull.pop()
                else:
                    break
            hull.append((w, c))
        for (wa, ca), (wb, cb) in zip(hull, hull[1:]):
            segments.append(((cb - ca) / (wa - wb), wa - wb))
    if need <= 0:
        return base
    segments.sort()
    lb = base
    for slope, dw in segments:
        take = dw if dw < need else need
        lb += slope * take
        need -= take
        if need <= 0:
            return lb
    return float("inf")


def analytic_lower_bound(
    problem: PlanningProblem,
    theta: float,
    quality_budget: Optional[float],
) -> float:
    """Cheap admissible lower bound on a candidate's score.

    Relaxes stage memory to a single total-capacity knapsack, drops
    contiguity, and lets every group take its best device — then rebuilds
    the analytic latency formula from per-term minima:

    * sum terms via the MCKP LP bound (quality budget and total memory
      each constrain how many groups can take their fastest bitwidth);
    * bottleneck terms via the max of the mean bound (max >= sum / stages),
      the per-stage "at least one group" bound, the pigeonhole bound
      (some stage holds >= ceil(G/N) groups), and inter-stage
      communication floors.

    Every term lower-bounds the corresponding component of
    :meth:`PlanningProblem.latency_estimate` for *any* feasible
    assignment, so the total never exceeds the score any solve returns.
    """
    n = problem.workload.output_len
    n_stages = problem.n_stages
    cap_total = float(problem.capacity.sum())
    cmin_pre = problem.l_pre.min(axis=1)  # (G, K): best device per bit
    cmin_dec = problem.l_dec.min(axis=1)

    def group_sum_bound(cmin: np.ndarray) -> float:
        best = float(cmin.min(axis=1).sum())
        if quality_budget is not None:
            best = max(
                best, mckp_lp_min_cost(cmin, problem.omega, quality_budget)
            )
        best = max(best, mckp_lp_min_cost(cmin, problem.mem, cap_total))
        return best

    s_pre = float(problem.const_pre.sum()) + group_sum_bound(cmin_pre)
    s_dec = float(problem.const_dec.sum()) + group_sum_bound(cmin_dec)
    comm_pre_max = (
        float(problem.comm_pre.max()) if problem.comm_pre.size else 0.0
    )
    comm_dec_max = (
        float(problem.comm_dec.max()) if problem.comm_dec.size else 0.0
    )
    per_stage_pre = problem.const_pre + problem.l_pre.min(axis=(0, 2))
    per_stage_dec = problem.const_dec + problem.l_dec.min(axis=(0, 2))
    m_heavy = -(-problem.n_groups // n_stages)
    heavy_pre = float(np.sort(problem.l_pre.min(axis=(1, 2)))[:m_heavy].sum())
    heavy_dec = float(np.sort(problem.l_dec.min(axis=(1, 2)))[:m_heavy].sum())
    pre_b = max(
        comm_pre_max, s_pre / n_stages, float(per_stage_pre.max()), heavy_pre
    )
    dec_b = max(
        comm_dec_max, s_dec / n_stages, float(per_stage_dec.max()), heavy_dec
    )
    prefill = (
        s_pre
        + float(problem.comm_pre.sum())
        + (problem.prefill_jobs - 1) * pre_b
    )
    round_trip = s_dec + float(problem.comm_dec.sum())
    decode = (n - 1) * max(problem.mu_dec * dec_b, round_trip)
    bound = prefill + decode
    if quality_budget is None and theta > 0.0:
        quality_lb = max(
            float(problem.omega.min(axis=1).sum()),
            mckp_lp_min_cost(problem.omega, problem.mem, cap_total),
        )
        bound += theta * quality_lb
    return bound


@dataclass
class _Candidate:
    """One enumerated (ordering, eta, xi, bit_kv) configuration."""

    index: int  # global enumeration index (the serial tie-break key)
    kv_index: int
    ord_index: int
    ordering: Tuple[StageGroup, ...]
    bit_kv: int
    eta: int
    xi: int
    problem: PlanningProblem
    bound: float = float("-inf")  # analytic admissible bound
    lp_bound: Optional[float] = None  # exact-MILP LP relaxation (lazy)
    sol: Optional[ILPSolution] = None
    status: str = "pending"
    score: float = float("inf")

    @property
    def best_bound(self) -> float:
        if self.lp_bound is not None:
            return max(self.bound, self.lp_bound)
        return self.bound


#: Ranked candidate tuple, shaped like the planner's verify list:
#: (score, solution, ordering, group_sizes, eta, xi, bit_kv).
RankedCandidate = Tuple[
    float,
    ILPSolution,
    Tuple[StageGroup, ...],
    Tuple[int, ...],
    int,
    int,
    int,
]


@dataclass
class SearchOutcome:
    """Everything ``plan()`` needs from one search."""

    #: Solved candidates sorted by (score, enumeration index) — the same
    #: order a stable sort of the exhaustive serial search produces.
    ranked: List[RankedCandidate]
    #: Per-candidate records in enumeration order.
    stats: List[CandidateStat]
    search: SearchStats


class CandidateSearchEngine:
    """Enumerate, bound, prune and solve planner candidates.

    The engine owns enumeration and scheduling; the *meaning* of a solve
    stays with the caller through two callbacks: ``cost_model_for_kv``
    (lazily fitted per KV bitwidth) and ``solve_one(problem, warm_start)``
    (the ILP or heuristic backend).  Guarantee: for any configuration, the
    ranked output equals the exhaustive serial search's stable
    score-sorted candidate list restricted to its top, so the chosen plan
    is bit-identical — pruning only ever removes candidates whose
    admissible bound proves they cannot enter the verified top-k.
    """

    def __init__(
        self,
        spec: ModelSpec,
        cluster: ClusterSpec,
        config: PlannerConfig,
        omega_layers: np.ndarray,
        cost_model_for_kv: Callable[[int], LatencyCostModel],
        solve_one: Callable[
            [PlanningProblem, Optional[ILPSolution]], Optional[ILPSolution]
        ],
    ) -> None:
        self.spec = spec
        self.cluster = cluster
        self.config = config
        self.omega_layers = omega_layers
        self.cost_model_for_kv = cost_model_for_kv
        self.solve_one = solve_one
        self._timings: List[MemoizedTiming] = []

    # -- enumeration ---------------------------------------------------

    def _enumerate(
        self, workload: BatchWorkload
    ) -> Tuple[List[_Candidate], Dict[Tuple[int, int], List[_Candidate]]]:
        cfg = self.config
        orderings = candidate_orderings(
            self.cluster,
            enable_tp=cfg.enable_tp,
            max_orderings=cfg.max_orderings,
        )
        mbs = microbatch_candidates(workload.batch, cfg.microbatch_candidates)
        kv_choices = cfg.kv_bit_choices or (cfg.bit_kv,)
        # Loop-invariant feasibility floor: even all-min-bits weights must
        # fit in the cluster's total capacity (hoisted out of the loops).
        min_weights = self.spec.num_layers * weight_storage_bytes(
            self.spec, min(cfg.bit_choices)
        )
        candidates: List[_Candidate] = []
        groups: Dict[Tuple[int, int], List[_Candidate]] = {}
        for kv_i, bit_kv in enumerate(kv_choices):
            cost_model = self.cost_model_for_kv(bit_kv)
            timing = MemoizedTiming(
                CostModelTiming(cost_model=cost_model, spec=self.spec)
            )
            self._timings.append(timing)
            for ord_i, ordering in enumerate(orderings):
                if min_weights > sum(sg.capacity_bytes for sg in ordering):
                    continue
                inv = problem_invariants(
                    self.spec,
                    self.cluster,
                    ordering,
                    workload,
                    self.omega_layers,
                    cfg.bit_choices,
                    group_size=cfg.group_size,
                    bit_kv=bit_kv,
                )
                for eta in mbs:
                    for xi in mbs:
                        if cfg.tie_microbatches and xi != eta:
                            continue
                        problem = build_problem(
                            self.spec,
                            self.cluster,
                            ordering,
                            workload,
                            cost_model,
                            self.omega_layers,
                            eta,
                            xi,
                            cfg.bit_choices,
                            group_size=cfg.group_size,
                            bit_kv=bit_kv,
                            phase_blind=cfg.phase_blind,
                            timing=timing,
                            invariants=inv,
                        )
                        cand = _Candidate(
                            index=len(candidates),
                            kv_index=kv_i,
                            ord_index=ord_i,
                            ordering=tuple(ordering),
                            bit_kv=bit_kv,
                            eta=eta,
                            xi=xi,
                            problem=problem,
                        )
                        candidates.append(cand)
                        groups.setdefault((kv_i, ord_i), []).append(cand)
        return candidates, groups

    # -- warm starts (heuristic mode) ----------------------------------

    def _warm_start_for(
        self,
        cand: _Candidate,
        group: List[_Candidate],
        attempts: Dict[int, Optional[ILPSolution]],
    ) -> Optional[ILPSolution]:
        """Replicate the serial loop's adabits warm-start protocol.

        The serial search tries ``solve_adabits`` at each candidate of an
        ordering (in enumeration order) until one succeeds, then reuses
        that single solution for the rest of the ordering.  To stay
        bit-identical under out-of-order solving, the warm start for a
        candidate is the first successful attempt at an index <= its own,
        with every attempt memoized so each is made exactly once.
        """
        cfg = self.config
        self._warm_starts_done = getattr(self, "_warm_starts_done", 0)
        for member in group:
            if member.index > cand.index:
                break
            if member.index not in attempts:
                attempts[member.index] = solve_adabits(
                    member.problem,
                    quality_budget=cfg.quality_budget,
                    time_limit_s=cfg.time_limit_s,
                )
                self._warm_starts_done += 1
            if attempts[member.index] is not None:
                return attempts[member.index]
        return None

    # -- the search ----------------------------------------------------

    def search(self, workload: BatchWorkload) -> SearchOutcome:
        with trace.span(
            "search.run",
            batch=workload.batch,
            parallelism=self.config.parallelism,
        ):
            return self._search(workload)

    def _search(self, workload: BatchWorkload) -> SearchOutcome:
        cfg = self.config
        t0 = time.perf_counter()
        theta_eff = 0.0 if cfg.quality_budget is not None else cfg.theta
        bound_mode = cfg.bound
        if bound_mode == "auto":
            bound_mode = "analytic" if cfg.use_heuristic else "lp"
        prune = cfg.prune and bound_mode != "none"

        with trace.span("search.enumerate") as sp:
            candidates, groups = self._enumerate(workload)
            sp.set(candidates=len(candidates))
        bound_time = 0.0
        lp_bounds = 0
        if prune:
            tb = time.perf_counter()
            with trace.span("search.bounds", candidates=len(candidates)):
                for cand in candidates:
                    cand.bound = analytic_lower_bound(
                        cand.problem, theta_eff, cfg.quality_budget
                    )
            bound_time += time.perf_counter() - tb

        # Best-bound-first tightens the incumbent early; enumeration order
        # breaks ties so serial replay is reproducible.
        order = (
            sorted(candidates, key=lambda c: (c.bound, c.index))
            if prune
            else list(candidates)
        )

        # The incumbent threshold is the k-th best *known* score per
        # candidate: solves record their exact final score, and the bulk
        # seeding stage below registers warm-start scores that each
        # candidate's solve can only improve on.  Either way every table
        # entry upper-bounds its candidate's achievable score, so the
        # k-th smallest entry upper-bounds the true k-th best score and
        # anything whose admissible bound exceeds it cannot enter the
        # verified top-k — skipping it cannot change the final plan.
        k_keep = cfg.verify_top_k if cfg.verify_top_k > 1 else 1
        known: Dict[int, float] = {}

        def threshold() -> float:
            if len(known) < k_keep:
                return float("inf")
            return sorted(known.values())[k_keep - 1]

        def try_prune(cand: _Candidate) -> bool:
            nonlocal bound_time, lp_bounds
            if not prune:
                return False
            if cand.bound == float("inf"):
                return True  # provably infeasible
            thr = threshold()
            if thr == float("inf"):
                return False
            slack = _PRUNE_ABS_SLACK + _PRUNE_REL_SLACK * abs(thr)
            if cand.bound > thr + slack:
                return True
            if bound_mode == "lp":
                if cand.lp_bound is None:
                    tb = time.perf_counter()
                    lp = solve_partition_lp_relaxation(
                        cand.problem,
                        theta=theta_eff,
                        quality_budget=cfg.quality_budget,
                        time_limit_s=cfg.time_limit_s,
                    )
                    bound_time += time.perf_counter() - tb
                    lp_bounds += 1
                    # None (no bound available) must never prune.
                    cand.lp_bound = float("-inf") if lp is None else lp
                if cand.lp_bound == float("inf"):
                    return True  # LP infeasible => ILP infeasible
                if cand.lp_bound > thr + slack:
                    return True
            return False

        warm_attempts: Dict[Tuple[int, int], Dict[int, Optional[ILPSolution]]]
        warm_attempts = {}
        self._warm_starts_done = 0

        # Bulk frontier scoring (heuristic mode): before any solve, score
        # every live candidate's warm-start assignment exactly — the same
        # analytic score function the backend minimizes — in one sweep,
        # and seed the incumbent table with the results.  The hill climb
        # only ever improves a warm start that is feasible for its
        # subproblem, so each seed upper-bounds that candidate's final
        # score and pruning on the seeded threshold stays parity-exact,
        # while incumbents tighten before the first solve instead of
        # trickling in with solve order.  Warm-start attempts land in the
        # same memo ``prep`` reads, so no solve is ever repeated.
        seeded = 0
        batches_run = 0
        frontier_scored = 0
        if prune and cfg.use_heuristic and candidates:
            tb = time.perf_counter()
            batches_run = 1
            frontier_scored = len(order)
            with trace.span("search.batch_score", plans=len(order)) as sp:
                for cand in order:
                    key = (cand.kv_index, cand.ord_index)
                    warm = self._warm_start_for(
                        cand, groups[key], warm_attempts.setdefault(key, {})
                    )
                    if warm is None:
                        continue
                    problem = cand.problem
                    if not problem.memory_ok(
                        warm.assign_stage, warm.assign_bits
                    ):
                        continue
                    quality = problem.quality_sum(warm.assign_bits)
                    if (
                        cfg.quality_budget is not None
                        and quality > cfg.quality_budget + 1e-12
                    ):
                        continue
                    score = problem.latency_estimate(
                        warm.assign_stage, warm.assign_bits
                    )
                    if cfg.quality_budget is None:
                        score += cfg.theta * quality
                    known[cand.index] = score
                    seeded += 1
                sp.set(seeded=seeded)
            bound_time += time.perf_counter() - tb

        def record(cand: _Candidate, sol: Optional[ILPSolution]) -> None:
            cand.sol = sol
            if sol is None:
                cand.status = "infeasible"
                known.pop(cand.index, None)
                return
            cand.status = "solved"
            score = sol.latency_s + cfg.theta * sol.quality
            if cfg.quality_budget is not None:
                score = sol.latency_s
            cand.score = score
            known[cand.index] = score

        def prep(cand: _Candidate) -> Optional[ILPSolution]:
            """Pre-solve work that must stay on the coordinating thread."""
            if not cfg.use_heuristic:
                return None
            key = (cand.kv_index, cand.ord_index)
            return self._warm_start_for(
                cand, groups[key], warm_attempts.setdefault(key, {})
            )

        def solve(
            cand: _Candidate, warm: Optional[ILPSolution]
        ) -> Optional[ILPSolution]:
            """Backend solve, traced (may run on a pool thread)."""
            if not trace.enabled:
                return self.solve_one(cand.problem, warm)
            with trace.span(
                "search.solve",
                index=cand.index,
                eta=cand.eta,
                xi=cand.xi,
                bit_kv=cand.bit_kv,
            ) as sp:
                sol = self.solve_one(cand.problem, warm)
                sp.set(
                    status="infeasible" if sol is None else sol.status,
                    bound_s=max(cand.best_bound, 0.0),
                )
                return sol

        def mark_pruned(cand: _Candidate) -> None:
            cand.status = "pruned"
            if trace.enabled:
                metrics.counter("planner.candidates_pruned").inc()

        if cfg.parallelism <= 1:
            for cand in order:
                if try_prune(cand):
                    mark_pruned(cand)
                    continue
                record(cand, solve(cand, prep(cand)))
        else:
            with ThreadPoolExecutor(max_workers=cfg.parallelism) as pool:
                i = 0
                while i < len(order):
                    batch = []
                    while i < len(order) and len(batch) < cfg.parallelism:
                        cand = order[i]
                        i += 1
                        if try_prune(cand):
                            mark_pruned(cand)
                            continue
                        warm = prep(cand)
                        batch.append(
                            (cand, pool.submit(solve, cand, warm))
                        )
                    for cand, fut in batch:
                        record(cand, fut.result())

        # Deterministic reduction: a stable sort on (score, enumeration
        # index) reproduces the serial search's stable score sort exactly.
        solved = [c for c in candidates if c.status == "solved"]
        solved.sort(key=lambda c: (c.score, c.index))
        ranked: List[RankedCandidate] = [
            (
                c.score,
                c.sol,
                c.ordering,
                c.problem.group_sizes,
                c.eta,
                c.xi,
                c.bit_kv,
            )
            for c in solved
        ]

        stats: List[CandidateStat] = []
        for c in candidates:
            key = tuple(sg.key() for sg in c.ordering)
            bound_s = max(c.best_bound, 0.0)
            if c.status == "solved":
                stats.append(
                    CandidateStat(
                        key,
                        c.eta,
                        c.xi,
                        c.sol.status,
                        c.sol.latency_s,
                        c.sol.quality,
                        c.sol.solve_time_s,
                        bound_s=bound_s,
                    )
                )
            else:
                stats.append(
                    CandidateStat(
                        key, c.eta, c.xi, c.status, 0.0, 0.0, 0.0,
                        bound_s=bound_s,
                    )
                )

        tightness = [
            c.best_bound / c.score
            for c in solved
            if np.isfinite(c.best_bound) and c.score > 0
        ]
        search_stats = SearchStats(
            enumerated=len(candidates),
            solved=len(solved),
            pruned=sum(1 for c in candidates if c.status == "pruned"),
            infeasible=sum(
                1 for c in candidates if c.status == "infeasible"
            ),
            cache_hits=sum(t.hits for t in self._timings),
            cache_misses=sum(t.misses for t in self._timings),
            lp_bounds=lp_bounds,
            warm_starts=self._warm_starts_done,
            mean_bound_tightness=(
                float(np.mean(tightness)) if tightness else 0.0
            ),
            wall_time_s=time.perf_counter() - t0,
            cum_solve_time_s=sum(
                c.sol.solve_time_s for c in candidates if c.sol is not None
            ),
            bound_time_s=bound_time,
            parallelism=cfg.parallelism,
            seeded_incumbents=seeded,
            batches=batches_run,
            batched_plans_scored=frontier_scored,
        )
        if trace.enabled:
            search_stats.publish_metrics()
        return SearchOutcome(ranked=ranked, stats=stats, search=search_stats)
