"""Cost models: memory (Sec. IV-A), latency regression, energy/$-cost."""

from .energy import (
    DEFAULT_ELECTRICITY_USD_PER_KWH,
    GPUPrice,
    PriceBook,
    default_price_book,
    plan_cost,
    plan_energy,
    stage_occupancies,
)
from .latency import (
    DECODE_GRID,
    PREFILL_GRID,
    LatencyCostModel,
    PhaseRegression,
    decode_features,
    fit_phase,
    prefill_features,
    relative_errors,
)
from .memory import (
    MemoryCostModel,
    activation_workspace_bytes,
    embedding_memory_bytes,
    layer_memory_bytes,
)

__all__ = [
    "DEFAULT_ELECTRICITY_USD_PER_KWH",
    "GPUPrice",
    "PriceBook",
    "default_price_book",
    "plan_cost",
    "plan_energy",
    "stage_occupancies",
    "DECODE_GRID",
    "PREFILL_GRID",
    "LatencyCostModel",
    "PhaseRegression",
    "decode_features",
    "fit_phase",
    "prefill_features",
    "relative_errors",
    "MemoryCostModel",
    "activation_workspace_bytes",
    "embedding_memory_bytes",
    "layer_memory_bytes",
]
