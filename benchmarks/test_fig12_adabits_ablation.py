"""Bench: regenerate Fig. 12 (ablation vs pure adaptive quantization)."""

from repro.experiments import fig12_adabits_ablation


def test_fig12_adabits_ablation(experiment):
    res = experiment(fig12_adabits_ablation.run)
    # Paper: joint optimization wins in all selected cases.
    assert res.summary["splitquant_wins_all"] == 1.0
    for row in res.rows:
        assert row[4] > 1.0 or row[2] == 0  # speedup vs adabits
