"""Bench: regenerate Table V (variance indicator vs Random / Hessian)."""

from repro.experiments import tab05_indicator


def test_tab05_indicator(experiment):
    res = experiment(tab05_indicator.run)
    s = res.summary
    for model in ("opt-66b", "opt-30b"):
        # PPL no worse than Random and on par with Hessian...
        assert s[f"{model}_vs_random_dppl"] <= 0.005
        assert abs(s[f"{model}_vs_hessian_dppl"]) < 0.05
        # ...at tens-of-x lower overhead (paper: 58-73x).
        assert s[f"{model}_speedup_vs_hessian"] > 20
