"""Bench: regenerate Fig. 11 (theta sensitivity)."""

from repro.experiments import fig11_theta_sensitivity


def test_fig11_theta_sensitivity(experiment):
    res = experiment(fig11_theta_sensitivity.run)
    # Paper: larger theta -> lower throughput, better (lower) perplexity.
    for model in ("opt-66b", "opt-30b"):
        assert res.summary[f"{model}_tput_monotone"] == 1.0
        assert res.summary[f"{model}_ppl_monotone"] == 1.0
