"""Tests for the noisy measurement front-end."""

import numpy as np

from repro.models import kv_cache_bytes, weight_storage_bytes
from repro.simgpu import LatencySample, Profiler, layer_time


def test_measurements_near_truth(opt13b, v100):
    prof = Profiler(seed=0)
    truth = layer_time(v100, opt13b, 16, "prefill", 8, 512)
    vals = [
        prof.measure_layer(v100, opt13b, 16, "prefill", 8, 512)
        for _ in range(30)
    ]
    assert abs(np.mean(vals) - truth) / truth < 0.05
    assert np.std(vals) > 0  # it is actually noisy


def test_deterministic_per_seed(opt13b, v100):
    a = Profiler(seed=42).measure_layer(v100, opt13b, 4, "decode", 4, 256)
    b = Profiler(seed=42).measure_layer(v100, opt13b, 4, "decode", 4, 256)
    assert a == b


def test_different_seeds_differ(opt13b, v100):
    a = Profiler(seed=1).measure_layer(v100, opt13b, 4, "decode", 4, 256)
    b = Profiler(seed=2).measure_layer(v100, opt13b, 4, "decode", 4, 256)
    assert a != b


def test_profile_grid_covers_cartesian(opt13b, t4):
    prof = Profiler(seed=0)
    samples = prof.profile_grid(
        t4, opt13b, 16, "prefill", batches=(1, 2), seqs=(64, 128, 256)
    )
    assert len(samples) == 6
    assert {(s.batch, s.seq) for s in samples} == {
        (1, 64), (1, 128), (1, 256), (2, 64), (2, 128), (2, 256)
    }
    assert all(isinstance(s, LatencySample) and s.time_s > 0 for s in samples)


def test_measure_memory_close_to_ideal(opt13b):
    prof = Profiler(seed=0)
    bits = [16, 8, 4, 3] * 3
    measured = prof.measure_memory(opt13b, bits, batch=4, context=600)
    ideal = sum(weight_storage_bytes(opt13b, b) for b in bits) + len(
        bits
    ) * kv_cache_bytes(opt13b, 4, 600)
    assert 0 <= (measured - ideal) / ideal < 0.001  # page rounding only


def test_measure_memory_monotone_in_context(opt13b):
    prof = Profiler(seed=0)
    a = prof.measure_memory(opt13b, [8] * 4, batch=4, context=300)
    b = prof.measure_memory(opt13b, [8] * 4, batch=4, context=600)
    assert b > a
