"""Synthetic evaluation corpora for quality measurement.

Real WikiText2/PTB/C4 text is unavailable offline; what the quality
experiments need is a *fixed corpus the model assigns non-trivial
probability to*, so that weight perturbations measurably raise perplexity.
We build such corpora by sampling from the FP16 TinyLM itself at moderate
temperature (the model is its own "natural" text source), with different
seeds standing in for the three datasets the paper averages over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .tinylm import TinyLM

#: Stand-ins for the paper's three perplexity corpora, with per-corpus
#: sampling temperatures so they differ in difficulty like the real ones.
CORPUS_SPECS: Dict[str, Tuple[int, float]] = {
    "wikitext2": (101, 0.75),
    "ptb": (202, 0.85),
    "c4": (303, 0.95),
}


@dataclass(frozen=True)
class EvalCorpora:
    """Named token corpora for perplexity evaluation."""

    corpora: Dict[str, np.ndarray]

    def names(self):
        return tuple(self.corpora)

    def __getitem__(self, name: str) -> np.ndarray:
        return self.corpora[name]


def build_eval_corpora(
    model: TinyLM, n_seqs: int = 8, seq_len: int = 96
) -> EvalCorpora:
    """Sample the three evaluation corpora from the FP16 model."""
    corpora = {
        name: model.sample(n_seqs, seq_len, temperature=temp, seed=seed)
        for name, (seed, temp) in CORPUS_SPECS.items()
    }
    return EvalCorpora(corpora=corpora)


def build_calibration_tokens(
    model: TinyLM, n_seqs: int = 4, seq_len: int = 64, seed: int = 7
) -> np.ndarray:
    """Calibration token segments (the paper uses 128 C4 segments)."""
    return model.sample(n_seqs, seq_len, temperature=0.9, seed=seed)


def zipfian_stream(
    vocab: int, n_seqs: int, seq_len: int, alpha: float = 1.2, seed: int = 0
) -> np.ndarray:
    """A Zipf-distributed token stream (text-like marginals, no structure).

    Used where only token *statistics* matter, e.g. workload padding tests.
    """
    if vocab < 2:
        raise ValueError("vocab must be >= 2")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, vocab + 1, dtype=np.float64)
    p = ranks**-alpha
    p /= p.sum()
    return rng.choice(vocab, size=(n_seqs, seq_len), p=p)
