"""Closed-form steady-state fast path for the pipeline simulator.

The discrete-event simulator in :mod:`repro.pipeline.simulator` executes
one heap event per (micro-batch, stage, step) job.  For the uniform
micro-batch schedules the paper's offline serving model produces, that
event ordering is fully determined in advance, so the same finish times
admit a closed-form recurrence — the trick Vidur-class LLM-serving
simulators use to stay fast at fleet scale.

**Why the recurrence is exact.**  Every stage is a FIFO server whose jobs
arrive from exactly one upstream source (stage ``j-1`` forward, or the
last stage's feedback for stage 0 in decode), and finish times at a FIFO
server are nondecreasing in submission order, with event-loop ties broken
by the submission counter.  By induction the global service order at
every stage is the lexicographic job order — flat ``(micro-batch, chunk)``
for prefill and ``(round, micro-batch)`` for decode — so each stage's
finish times satisfy

    F[j][k] = max(F[j][k-1], A[j][k]) + dur[j][k]

where ``A[j][k]`` is the arrival (upstream finish + link time, or the
decode feedback ``F[last][m, t-1] + fb``).  The implementation replays
the *identical* floating-point operations the event loop performs —
``max`` then one add per job, ``np.cumsum`` (sequential) for the
zero-arrival first stage, busy-time accumulated in submission order — so
results are bit-equal to the event-driven oracle, not approximations.
The differential grid in ``tests/test_fastsim.py`` asserts exact
equality.

Eligibility: any fault-free uniform-micro-batch run (every
``simulate_plan`` call) and the fixed-size degenerate case of
``simulate_plan_variable`` (all requests generating the same number of
tokens, where retirement never splits a round).  Variable-length decode
with mid-flight retirement keeps the event-driven path.

Duration tables (per-stage chunk times, decode step series, link and
feedback delays) are built once per ``(plan, cluster, workload, timing)``
by :func:`build_plan_tables` and memoized, so repeat evaluations of the
same plan — and the cross-plan batched evaluator in
:mod:`repro.pipeline.batchsim` — pay the table cost once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..hardware.cluster import ClusterSpec, Device
from ..models.architectures import ModelSpec
from ..models import layers as L
from ..obs import trace
from ..plan import ExecutionPlan
from ..simgpu import roofline
from ..workloads.spec import BatchWorkload, VariableBatchWorkload
from .stage import (
    MemoizedTiming,
    RooflineTiming,
    StageExecutionModel,
    TimingSource,
)

__all__ = [
    "PlanTables",
    "build_plan_tables",
    "clear_table_caches",
    "fast_eligibility",
    "fast_eligibility_variable",
    "fast_eligible",
    "fast_eligible_variable",
    "shared_default_timing",
]


# ---------------------------------------------------------------------------
# Eligibility: one predicate, one reason string, reused by every caller.
# ---------------------------------------------------------------------------

#: Reason the fast path declines a variable-output batch.
VARIABLE_RETIRING_REASON = (
    "variable output lengths (requests retire mid-decode)"
)


def fast_eligibility(
    plan: ExecutionPlan, workload: BatchWorkload
) -> Optional[str]:
    """Why the fast path would *decline* a uniform-batch run, or ``None``.

    Uniform micro-batching with no injected faults is exactly the
    ``simulate_plan`` contract, so every such run is eligible; the hook
    exists so ``sim_backend="auto"`` and the batched evaluator share one
    documented decision point (and one reason string when it declines).
    """
    return None


def fast_eligibility_variable(
    workload: VariableBatchWorkload,
) -> Optional[str]:
    """Why the fast path declines a variable-output batch, or ``None``.

    The fixed-size degenerate case (all output lengths equal) is exact;
    genuinely variable batches retire requests mid-decode and keep the
    event engine.
    """
    lens = workload.output_lens
    if len(set(lens)) == 1:
        return None
    return VARIABLE_RETIRING_REASON


def fast_eligible(plan: ExecutionPlan, workload: BatchWorkload) -> bool:
    """Whether the closed-form fast path applies to a uniform-batch run."""
    return fast_eligibility(plan, workload) is None


def fast_eligible_variable(workload: VariableBatchWorkload) -> bool:
    """The fixed-size portion of the variable simulator: equal lengths."""
    return fast_eligibility_variable(workload) is None


# ---------------------------------------------------------------------------
# Duration tables: built once per (plan, cluster, workload, timing).
# ---------------------------------------------------------------------------


@dataclass
class PlanTables:
    """Everything the max-plus recurrence needs, precomputed.

    One instance fully describes a (plan, workload) evaluation: per-stage
    prefill chunk durations and link delays as flat job vectors, and the
    decode step series / link / feedback delays hoisted per micro-batch.
    The batched evaluator stacks many of these into one tensor.
    """

    n_stages: int
    # -- prefill: flat (micro-batch, chunk) wavefront --------------------
    n_mb: int
    kappa: int
    n_pre: int
    pre_events: int
    #: ``pre_dur[j]`` is the (n_pre,) duration vector of stage ``j``.
    pre_dur: List[np.ndarray]
    #: ``pre_comm[j]`` is the (n_pre,) link delay from stage j to j+1.
    pre_comm: List[np.ndarray]
    # -- decode: (round, micro-batch) with feedback ----------------------
    n_dec: int
    decode_steps: int
    dec_events: int
    #: ``series_jm[j][m][t]`` — decode durations per stage, micro-batch.
    series_jm: List[List[List[float]]]
    #: ``comm_jm[j][m]`` — forward link delay from stage j to j+1.
    comm_jm: List[List[float]]
    #: ``fb_m[m]`` — feedback delay from the last stage back to stage 0.
    fb_m: List[float]
    #: ``series_jm`` as one (n_stages, n_dec, decode_steps) array, built
    #: lazily (the batched evaluator's stacking fast path; the exact
    #: same floats as the nested lists).
    dec_arr: Optional[np.ndarray] = None

    @property
    def events(self) -> int:
        return self.pre_events + self.dec_events

    def decode_array(self) -> np.ndarray:
        if self.dec_arr is None:
            self.dec_arr = np.asarray(self.series_jm, dtype=np.float64)
        return self.dec_arr


# Bounded memo of built tables, keyed by (plan, cluster, workload,
# timing token).  Values keep a reference to the timing object so
# id-based tokens can never alias a collected object.
_TABLE_CACHE: Dict[Any, Tuple[TimingSource, PlanTables]] = {}
_TABLE_CACHE_MAX = 256

# Cross-plan component memo: per-stage prefill chunk times and decode
# series depend only on (timing, spec, stage plan, gpu, position,
# micro-batch, lengths) — not the rest of the plan — so structurally
# identical stages recur heavily across a candidate frontier.  Shared
# only when the caller opts in (the batched evaluator does; the per-plan
# path keeps its seed-identical cold-start cost).
_COMPONENT_CACHE: Dict[Any, Tuple[TimingSource, Any]] = {}
_COMPONENT_CACHE_MAX = 4096

# Default-timing memo for the batched evaluator: one MemoizedTiming per
# (model, KV bitwidth) so unit layer costs are computed once per fleet,
# not once per plan.  Returns the very floats RooflineTiming would, so
# results stay bit-identical to the uncached default.
_DEFAULT_MEMOS: Dict[Tuple[ModelSpec, int], MemoizedTiming] = {}

# Shared-build sub-memos (share_components=True only): stage contexts
# keyed by the plan's *stages* (micro-batch variants of one partition
# share a context), and whole prefill/decode bundles keyed by exactly
# what each side depends on — decode ignores prefill chunking and vice
# versa, so chunk- and micro-batch-variant frontiers reuse wholesale.
_CONTEXT_CACHE: Dict[Any, Tuple[TimingSource, Any]] = {}
_CONTEXT_CACHE_MAX = 1024
_PREFILL_CACHE: Dict[Any, Tuple[TimingSource, Any]] = {}
_PREFILL_CACHE_MAX = 1024
_DECODE_CACHE: Dict[Any, Tuple[TimingSource, Any]] = {}
_DECODE_CACHE_MAX = 1024


def clear_table_caches() -> None:
    """Drop all fastsim memos (benchmarks use this for cold timings)."""
    _TABLE_CACHE.clear()
    _COMPONENT_CACHE.clear()
    _DEFAULT_MEMOS.clear()
    _CONTEXT_CACHE.clear()
    _PREFILL_CACHE.clear()
    _DECODE_CACHE.clear()


def shared_default_timing(spec: ModelSpec, bit_kv: int) -> TimingSource:
    """The batched evaluator's default timing: memoized roofline truth."""
    key = (spec, bit_kv)
    memo = _DEFAULT_MEMOS.get(key)
    if memo is None:
        memo = _DEFAULT_MEMOS[key] = MemoizedTiming(
            RooflineTiming(spec=spec, bit_kv=bit_kv)
        )
    return memo


def _timing_token(timing: TimingSource) -> Any:
    """A hashable stand-in for ``timing`` in cache keys.

    Value-hashable sources (the frozen timing dataclasses) key by value
    so equal configurations share entries; everything else keys by
    object identity, with the object itself kept alive in the cache
    entry so the id cannot be recycled while the entry exists.
    """
    try:
        hash(timing)
    except TypeError:
        return ("timing-id", id(timing))
    return timing


def _bounded_put(cache: Dict, limit: int, key: Any, value: Any) -> None:
    if len(cache) >= limit:
        cache.pop(next(iter(cache)))
    cache[key] = value


def _build_stage_context(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    timing: TimingSource,
):
    """Stage execution models + links, mirroring ``_simulate_plan``."""
    by_id: Dict[int, Device] = {d.device_id: d for d in cluster.devices}
    n_stages = plan.num_stages
    stage_models = [
        StageExecutionModel(
            stage=st,
            gpu=by_id[st.device_ids[0]].gpu,
            spec=spec,
            timing=timing,
            is_first=(j == 0),
            is_last=(j == n_stages - 1),
        )
        for j, st in enumerate(plan.stages)
    ]
    fwd_links = [
        cluster.link_between(
            by_id[plan.stages[j].device_ids[0]],
            by_id[plan.stages[j + 1].device_ids[0]],
        )
        for j in range(n_stages - 1)
    ]
    feedback_link = (
        cluster.link_between(
            by_id[plan.stages[-1].device_ids[0]],
            by_id[plan.stages[0].device_ids[0]],
        )
        if n_stages > 1
        else None
    )
    return stage_models, fwd_links, feedback_link


def _layer_sum(per_layer: np.ndarray) -> np.ndarray:
    """Sequential left-to-right sum over the trailing (layer) axis.

    ``np.cumsum`` accumulates strictly in order (no pairwise reduction),
    so taking the last partial sum reproduces the scalar
    ``total = 0.0; total += layer`` chain bit-for-bit (``0.0 + x == x``).
    """
    return np.cumsum(per_layer, axis=-1)[..., -1]


def _prefill_chunk_shared(
    sm: StageExecutionModel, size: int, chunk: int
) -> float:
    """Bit-exact replica of ``StageExecutionModel.prefill_chunk_time``.

    Looks up each *distinct* layer bitwidth once instead of once per
    layer — the timing source is memoized on exactly those arguments —
    then accumulates in layer order.
    """
    bits_seq = sm.stage.layer_bits
    tp = sm.stage.tp_degree
    per_bits = {
        b: sm.timing.prefill(sm.gpu, b, size, chunk, tp)
        for b in set(bits_seq)
    }
    total = float(
        _layer_sum(
            np.asarray([per_bits[b] for b in bits_seq], dtype=np.float64)
        )
    )
    if sm.is_first:
        total += roofline.embedding_time(sm.gpu, sm.spec, size * chunk)
    if sm.is_last:
        total += roofline.lm_head_time(sm.gpu, sm.spec, size)
    return total


def _decode_series_shared(
    sm: StageExecutionModel,
    size: int,
    prompt_len: int,
    n_out: int,
    samples: int = 9,
) -> List[float]:
    """Bit-exact replica of ``StageExecutionModel.decode_time_series``.

    Same probe contexts, same interpolation — but each distinct layer
    bitwidth costs one memoized timing lookup per probe instead of one
    per layer, and the per-step layer sum runs as one sequential cumsum.
    """
    steps = np.arange(1, max(n_out, 2))
    contexts = prompt_len + steps
    direct = len(contexts) <= samples
    if direct:
        probe = contexts
    else:
        probe = np.unique(
            np.linspace(contexts[0], contexts[-1], samples).astype(int)
        )
    bits_seq = sm.stage.layer_bits
    tp = sm.stage.tp_degree
    per_bits = {
        b: [sm.timing.decode(sm.gpu, b, size, int(c), tp) for c in probe]
        for b in set(bits_seq)
    }
    vals = np.empty((len(probe), len(bits_seq)), dtype=np.float64)
    for j, b in enumerate(bits_seq):
        vals[:, j] = per_bits[b]
    times = _layer_sum(vals)
    if sm.is_first:
        times = times + roofline.embedding_time(sm.gpu, sm.spec, size)
    if sm.is_last:
        times = times + roofline.lm_head_time(sm.gpu, sm.spec, size)
    if direct:
        return times.tolist()
    return np.interp(contexts, probe, times).tolist()


def _stage_key(sm: StageExecutionModel) -> Tuple[Any, ...]:
    """What a stage's timing actually depends on.

    Device ids and the stage's position in the layer range don't enter
    any per-stage time, so keying on (bitwidths, TP degree, GPU model,
    boundary flags) lets structurally identical stages share across
    different clusters and layer offsets — e.g. every 10-layer INT4 T4
    stage in a fleet sweep, wherever it sits.
    """
    return (
        sm.spec, sm.stage.layer_bits, sm.stage.tp_degree, sm.gpu.name,
        sm.is_first, sm.is_last,
    )


def _prefill_chunk_time(
    sm: StageExecutionModel, size: int, chunk: int, token: Any, share: bool
) -> float:
    if not share:
        return sm.prefill_chunk_time(size, chunk)
    key = ("p", token, _stage_key(sm), size, chunk)
    hit = _COMPONENT_CACHE.get(key)
    if hit is not None:
        return hit[1]
    val = _prefill_chunk_shared(sm, size, chunk)
    _bounded_put(
        _COMPONENT_CACHE, _COMPONENT_CACHE_MAX, key, (sm.timing, val)
    )
    return val


def _decode_series(
    sm: StageExecutionModel,
    size: int,
    prompt_len: int,
    n_out: int,
    token: Any,
    share: bool,
) -> List[float]:
    if not share:
        return sm.decode_time_series(size, prompt_len, n_out).tolist()
    key = ("d", token, _stage_key(sm), size, prompt_len, n_out)
    hit = _COMPONENT_CACHE.get(key)
    if hit is not None:
        return hit[1]
    val = _decode_series_shared(sm, size, prompt_len, n_out)
    _bounded_put(
        _COMPONENT_CACHE, _COMPONENT_CACHE_MAX, key, (sm.timing, val)
    )
    return val


def build_plan_tables(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: BatchWorkload,
    timing: TimingSource,
    share_components: bool = False,
) -> PlanTables:
    """Build (or fetch) the duration tables for one plan evaluation.

    ``share_components=True`` additionally memoizes per-stage chunk
    times and decode series across *different* plans sharing structurally
    identical stages — the batched evaluator's main table-cost lever.
    """
    token = _timing_token(timing)
    key = (plan, cluster, workload, token)
    hit = _TABLE_CACHE.get(key)
    if hit is not None:
        return hit[1]

    ctx_key = (plan.stages, cluster, spec, token)
    ctx_hit = _CONTEXT_CACHE.get(ctx_key) if share_components else None
    if ctx_hit is not None:
        stage_models, fwd_links, feedback_link = ctx_hit[1]
    else:
        stage_models, fwd_links, feedback_link = _build_stage_context(
            plan, cluster, spec, timing
        )
        if share_components:
            _bounded_put(
                _CONTEXT_CACHE, _CONTEXT_CACHE_MAX, ctx_key,
                (timing, (stage_models, fwd_links, feedback_link)),
            )
    n_stages = len(stage_models)
    from .simulator import _FEEDBACK_BYTES_PER_REQ, _microbatch_sizes

    # -- prefill ---------------------------------------------------------
    chunk = workload.chunk_len
    pre_key = (
        plan.stages, plan.prefill_microbatch, cluster, spec, token,
        workload.batch, workload.prompt_len, chunk,
    )
    pre_hit = _PREFILL_CACHE.get(pre_key) if share_components else None
    if pre_hit is not None:
        n_mb, kappa, n_pre, pre_dur, pre_comm = pre_hit[1]
    else:
        pre_sizes = _microbatch_sizes(workload.batch, plan.prefill_microbatch)
        kappa = workload.kappa
        # Uniform micro-batching yields at most two distinct sizes, so the
        # flat job vectors are assembled by fancy-indexing one value per
        # distinct size (exact copies of the same floats).
        uniq_pre = sorted(set(pre_sizes))
        pos = {s: i for i, s in enumerate(uniq_pre)}
        idx = np.asarray(
            [pos[s] for s in pre_sizes for _ in range(kappa)], dtype=np.intp
        )
        pre_dur = [
            np.asarray(
                [
                    _prefill_chunk_time(sm, s, chunk, token, share_components)
                    for s in uniq_pre
                ],
                dtype=np.float64,
            )[idx]
            for sm in stage_models
        ]
        pre_comm = [
            np.asarray(
                [
                    link.transfer_time(L.hidden_state_bytes(spec, s, chunk))
                    for s in uniq_pre
                ],
                dtype=np.float64,
            )[idx]
            for link in fwd_links
        ]
        n_mb = len(pre_sizes)
        n_pre = n_mb * kappa
        if share_components:
            _bounded_put(
                _PREFILL_CACHE, _PREFILL_CACHE_MAX, pre_key,
                (timing, (n_mb, kappa, n_pre, pre_dur, pre_comm)),
            )

    # -- decode ----------------------------------------------------------
    n_out = workload.output_len
    decode_steps = n_out - 1
    n_dec = 0
    series_jm: List[List[List[float]]] = []
    comm_jm: List[List[float]] = []
    fb_m: List[float] = []
    dec_arr: Optional[np.ndarray] = None
    if decode_steps > 0:
        dec_key = (
            plan.stages, plan.decode_microbatch, cluster, spec, token,
            workload.batch, workload.prompt_len, n_out,
        )
        dec_hit = _DECODE_CACHE.get(dec_key) if share_components else None
        if dec_hit is not None:
            n_dec, series_jm, comm_jm, fb_m, dec_arr = dec_hit[1]
        else:
            dec_sizes = _microbatch_sizes(
                workload.batch, plan.decode_microbatch
            )
            dec_series: Dict[Tuple[int, int], List[float]] = {}
            for size in set(dec_sizes):
                for j, sm in enumerate(stage_models):
                    dec_series[(j, size)] = _decode_series(
                        sm, size, workload.prompt_len, n_out, token,
                        share_components,
                    )
            dec_comm: Dict[Tuple[int, int], float] = {}
            for size in set(dec_sizes):
                for j, link in enumerate(fwd_links):
                    dec_comm[(j, size)] = link.transfer_time(
                        L.hidden_state_bytes(spec, size, 1)
                    )
            fb_delay = {
                size: (
                    feedback_link.transfer_time(
                        size * _FEEDBACK_BYTES_PER_REQ
                    )
                    if feedback_link is not None
                    else 0.0
                )
                for size in set(dec_sizes)
            }
            n_dec = len(dec_sizes)
            series_jm = [
                [dec_series[(j, size)] for size in dec_sizes]
                for j in range(n_stages)
            ]
            comm_jm = [
                [dec_comm[(j, size)] for size in dec_sizes]
                for j in range(n_stages - 1)
            ]
            fb_m = [fb_delay[size] for size in dec_sizes]
            if share_components:
                dec_arr = np.asarray(series_jm, dtype=np.float64)
                _bounded_put(
                    _DECODE_CACHE, _DECODE_CACHE_MAX, dec_key,
                    (timing, (n_dec, series_jm, comm_jm, fb_m, dec_arr)),
                )

    tables = PlanTables(
        n_stages=n_stages,
        n_mb=n_mb,
        kappa=kappa,
        n_pre=n_pre,
        pre_events=n_pre * n_stages,
        pre_dur=pre_dur,
        pre_comm=pre_comm,
        n_dec=n_dec,
        decode_steps=decode_steps,
        dec_events=n_dec * decode_steps * n_stages,
        series_jm=series_jm,
        comm_jm=comm_jm,
        fb_m=fb_m,
        dec_arr=dec_arr,
    )
    _bounded_put(_TABLE_CACHE, _TABLE_CACHE_MAX, key, (timing, tables))
    return tables


def _fast_core(
    tables: PlanTables,
    emit_spans: bool,
) -> Tuple[float, float, List[float], int]:
    """The cumulative-max recurrence over (micro-batch x stage) arrays.

    Returns ``(prefill_span, decode_span, stage_busy, events)`` with
    every float bit-equal to what the event loop would produce.
    """
    n_stages = tables.n_stages
    n_pre = tables.n_pre

    # -- prefill: flat (micro-batch, chunk) wavefront -------------------
    busy: List[float] = []
    free: List[float] = []
    with trace.span(
        "sim.prefill", microbatches=tables.n_mb, chunks=tables.kappa
    ) if emit_spans else _NULL_CTX as sp:
        # Stage 0 sees zero arrivals: finish times are a plain running
        # sum, and np.cumsum accumulates sequentially (bit-identical to
        # the event loop's free_at chain).
        dur0 = tables.pre_dur[0]
        prev = np.cumsum(dur0)
        b = 0.0
        for d in dur0.tolist():
            b += d
        busy.append(b)
        free.append(float(prev[-1]))
        for j in range(1, n_stages):
            # Elementwise adds are one IEEE op per job — exact.
            arrivals = (prev + tables.pre_comm[j - 1]).tolist()
            dur = tables.pre_dur[j].tolist()
            out = np.empty(n_pre, dtype=np.float64)
            f = 0.0
            b = 0.0
            for k in range(n_pre):
                a = arrivals[k]
                if f < a:
                    f = a
                d = dur[k]
                f = f + d
                out[k] = f
                b += d
            busy.append(b)
            free.append(f)
            prev = out
        # Per-stage finishes are nondecreasing in FIFO order, so the
        # last stage's final job is the event loop's max().
        prefill_span = float(prev[-1])
        if emit_spans:
            sp.set(events=tables.pre_events)

    # -- decode: (round, micro-batch) with autoregressive feedback ------
    decode_steps = tables.decode_steps
    decode_span = 0.0
    if decode_steps > 0:
        n_dec = tables.n_dec
        series_jm = tables.series_jm
        comm_jm = tables.comm_jm
        fb_m = tables.fb_m

        with trace.span(
            "sim.decode", microbatches=n_dec, steps=decode_steps
        ) if emit_spans else _NULL_CTX as sp:
            arrivals0 = [prefill_span] * n_dec
            rng_dec = range(n_dec)
            finishes: List[float] = arrivals0
            for t in range(decode_steps):
                cur = arrivals0
                for j in range(n_stages):
                    sj = series_jm[j]
                    fj = free[j]
                    bj = busy[j]
                    nxt: List[float] = []
                    append = nxt.append
                    if j == 0:
                        for m in rng_dec:
                            a = cur[m]
                            if fj < a:
                                fj = a
                            d = sj[m][t]
                            fj = fj + d
                            bj += d
                            append(fj)
                    else:
                        cm = comm_jm[j - 1]
                        for m in rng_dec:
                            a = finishes[m] + cm[m]
                            if fj < a:
                                fj = a
                            d = sj[m][t]
                            fj = fj + d
                            bj += d
                            append(fj)
                    free[j] = fj
                    busy[j] = bj
                    finishes = nxt
                if t + 1 < decode_steps:
                    arrivals0 = [
                        finishes[m] + fb_m[m] for m in rng_dec
                    ]
            decode_span = max(finishes) - prefill_span
            if emit_spans:
                sp.set(events=tables.dec_events)

    return prefill_span, decode_span, busy, tables.events


class _NullCtx:
    """A no-op ``with`` target standing in for a span (variable path)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs) -> None:  # pragma: no cover - never called
        pass


_NULL_CTX = _NullCtx()


def _fast_simulate_plan(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: BatchWorkload,
    timing: Optional[TimingSource],
    check_memory: bool,
):
    """Fast-path twin of ``_simulate_plan`` (bit-equal results)."""
    from .simulator import PipelineSimResult, check_plan_memory

    if plan.num_layers != spec.num_layers:
        raise ValueError(
            f"plan covers {plan.num_layers} layers, model has {spec.num_layers}"
        )
    timing = timing or RooflineTiming(spec=spec, bit_kv=plan.bit_kv)
    stage_mem = (
        check_plan_memory(plan, cluster, spec, workload)
        if check_memory
        else tuple(0 for _ in plan.stages)
    )
    tables = build_plan_tables(plan, cluster, spec, workload, timing)
    prefill_span, decode_span, busy, events = _fast_core(
        tables, emit_spans=True
    )
    return PipelineSimResult(
        makespan_s=prefill_span + decode_span,
        prefill_span_s=prefill_span,
        decode_span_s=decode_span,
        total_tokens=workload.batch * workload.output_len,
        stage_busy_s=tuple(busy),
        stage_memory_bytes=stage_mem,
        events_processed=events,
        sim_backend="fast",
    )


def _fast_simulate_plan_variable(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: VariableBatchWorkload,
    timing: Optional[TimingSource],
    check_memory: bool,
):
    """Fast-path twin of ``_simulate_plan_variable`` for equal lengths.

    With every request generating the same token count, retirement only
    happens after the final round, so the variable-length event schedule
    degenerates to the uniform one and the same recurrence is exact.
    Callers must check :func:`fast_eligible_variable` first.
    """
    from .simulator import PipelineSimResult, check_plan_memory

    if not fast_eligible_variable(workload):
        raise ValueError(
            "fast backend requires uniform output lengths; "
            "use sim_backend='event' for retiring requests"
        )
    if plan.num_layers != spec.num_layers:
        raise ValueError(
            f"plan covers {plan.num_layers} layers, model has {spec.num_layers}"
        )
    timing = timing or RooflineTiming(spec=spec, bit_kv=plan.bit_kv)
    uniform = BatchWorkload(
        batch=workload.batch,
        prompt_len=workload.prompt_len,
        output_len=workload.max_output,
        chunk_tokens=workload.chunk_tokens,
    )
    stage_mem = (
        check_plan_memory(plan, cluster, spec, uniform)
        if check_memory
        else tuple(0 for _ in plan.stages)
    )
    tables = build_plan_tables(plan, cluster, spec, uniform, timing)
    prefill_span, decode_span, busy, events = _fast_core(
        tables, emit_spans=False
    )
    return PipelineSimResult(
        makespan_s=prefill_span + decode_span,
        prefill_span_s=prefill_span,
        decode_span_s=decode_span,
        total_tokens=workload.total_output_tokens,
        stage_busy_s=tuple(busy),
        stage_memory_bytes=stage_mem,
        events_processed=events,
        sim_backend="fast",
    )
