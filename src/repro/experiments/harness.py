"""Experiment harness: structured results and table formatting.

Every experiment module exposes ``run(...) -> ExperimentResult``; the
benchmark suite regenerates each paper table/figure by calling these and
printing the rows the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class ExperimentResult:
    """One reproduced table or figure."""

    name: str
    title: str
    headers: List[str]
    rows: List[List[Any]]
    notes: str = ""
    #: Free-form scalar summaries (e.g. mean speedup) for assertions.
    summary: Dict[str, float] = field(default_factory=dict)

    def _fmt(self, v: Any) -> str:
        if isinstance(v, float):
            if v == 0:
                return "0"
            if abs(v) >= 1000:
                return f"{v:,.0f}"
            if abs(v) >= 10:
                return f"{v:.1f}"
            return f"{v:.3f}"
        return str(v)

    def to_text(self) -> str:
        """Render as an aligned plain-text table."""
        cells = [self.headers] + [[self._fmt(v) for v in r] for r in self.rows]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.headers))
        ]
        lines = [f"== {self.name}: {self.title} =="]
        header = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells[1:]:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.summary:
            parts = ", ".join(f"{k}={self._fmt(v)}" for k, v in self.summary.items())
            lines.append(f"summary: {parts}")
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def column(self, header: str) -> List[Any]:
        """All values of one column by header name."""
        idx = self.headers.index(header)
        return [r[idx] for r in self.rows]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (aligned with the ``repro.api.Summary`` style)."""
        return {
            "kind": "experiment",
            "name": self.name,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(r) for r in self.rows],
            "notes": self.notes,
            "summary": dict(self.summary),
        }
