"""The bitwidth-transfer heuristic (Sec. IV-C).

Scales the assigner to configurations where the exact ILP is too slow:

1. obtain a feasible quality-first start (a greedy *adabits* construction:
   capacity-proportional contiguous split with per-group bit upgrades;
   the exact adabits ILP is the fallback when the greedy fails);
2. hill-climb with the paper's transformation family
   ``C = (b_st, b_pi, num_s)`` — re-precision a group in place, or move
   boundary groups between adjacent stages with an optional bitwidth
   conversion — until no move improves the objective.

The objective mirrors the ILP: analytic end-to-end latency plus
``theta * sum(omega)``, under memory and (optional) quality-budget
constraints.  Moves are evaluated incrementally against per-stage
time/memory accumulators, so one evaluation costs O(stages) rather than
O(layers), keeping the heuristic orders of magnitude cheaper than an
exact solve at scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .costs import PlanningProblem
from .ilp import ILPSolution, solve_adabits


@dataclass
class _State:
    """Assignment plus incrementally-maintained per-stage aggregates."""

    stage: List[int]
    kidx: List[int]  # bit-choice index per group
    t_pre: np.ndarray
    t_dec: np.ndarray
    mem: np.ndarray
    quality: float

    @classmethod
    def build(
        cls, problem: PlanningProblem, stage: Sequence[int], kidx: Sequence[int]
    ) -> "_State":
        t_pre = problem.const_pre.copy()
        t_dec = problem.const_dec.copy()
        mem = np.zeros(problem.n_stages)
        quality = 0.0
        for g, (j, k) in enumerate(zip(stage, kidx)):
            t_pre[j] += problem.l_pre[g, j, k]
            t_dec[j] += problem.l_dec[g, j, k]
            mem[j] += problem.mem[g, k]
            quality += problem.omega[g, k]
        return cls(
            stage=list(stage),
            kidx=list(kidx),
            t_pre=t_pre,
            t_dec=t_dec,
            mem=mem,
            quality=quality,
        )

    def apply(
        self, problem: PlanningProblem, changes: Sequence[Tuple[int, int, int]]
    ) -> None:
        """Apply ``(group, new_stage, new_kidx)`` changes in place."""
        for g, nj, nk in changes:
            oj, ok = self.stage[g], self.kidx[g]
            self.t_pre[oj] -= problem.l_pre[g, oj, ok]
            self.t_dec[oj] -= problem.l_dec[g, oj, ok]
            self.mem[oj] -= problem.mem[g, ok]
            self.quality -= problem.omega[g, ok]
            self.t_pre[nj] += problem.l_pre[g, nj, nk]
            self.t_dec[nj] += problem.l_dec[g, nj, nk]
            self.mem[nj] += problem.mem[g, nk]
            self.quality += problem.omega[g, nk]
            self.stage[g] = nj
            self.kidx[g] = nk

    def revert(
        self,
        problem: PlanningProblem,
        changes: Sequence[Tuple[int, int, int]],
        saved: Sequence[Tuple[int, int]],
    ) -> None:
        undo = [
            (g, oj, ok) for (g, _, _), (oj, ok) in zip(changes, saved)
        ]
        self.apply(problem, undo)


def _objective_from_aggregates(
    problem: PlanningProblem,
    state: _State,
    theta: float,
    quality_budget: Optional[float],
) -> float:
    if quality_budget is not None and state.quality > quality_budget + 1e-12:
        return float("inf")
    if np.any(state.mem > problem.capacity + 1e-6):
        return float("inf")
    n = problem.workload.output_len
    comm_pre_max = float(problem.comm_pre.max()) if problem.comm_pre.size else 0.0
    comm_dec_max = float(problem.comm_dec.max()) if problem.comm_dec.size else 0.0
    pre_bottleneck = max(float(state.t_pre.max()), comm_pre_max)
    prefill_span = float(state.t_pre.sum() + problem.comm_pre.sum()) + (
        problem.prefill_jobs - 1
    ) * pre_bottleneck
    dec_bottleneck = max(float(state.t_dec.max()), comm_dec_max)
    round_trip = float(state.t_dec.sum() + problem.comm_dec.sum())
    decode_span = (n - 1) * max(problem.mu_dec * dec_bottleneck, round_trip)
    return prefill_span + decode_span + theta * state.quality


def _boundaries(stage: Sequence[int], n_stages: int) -> List[Tuple[int, int, int]]:
    """(stage, first_group, last_group) per non-empty stage."""
    out = []
    for j in range(n_stages):
        gs = [g for g, s in enumerate(stage) if s == j]
        if gs:
            out.append((j, gs[0], gs[-1]))
    return out


def _candidate_changes(
    problem: PlanningProblem, state: _State
) -> List[List[Tuple[int, int, int]]]:
    """Change-lists for every neighbor state.

    (a) re-precision any group in place; (b) shift 1-2 boundary groups of
    any stage to the adjacent stage, optionally converting their bits —
    the paper's ``(b_st, b_pi, num_s)`` transformations.
    """
    moves: List[List[Tuple[int, int, int]]] = []
    K = problem.n_bits
    for g in range(problem.n_groups):
        for k in range(K):
            if k != state.kidx[g]:
                moves.append([(g, state.stage[g], k)])
    spans = _boundaries(state.stage, problem.n_stages)
    for idx, (j, first, last) in enumerate(spans):
        n_in_stage = last - first + 1
        for num_s in (1, 2):
            if n_in_stage <= num_s:
                continue  # stages must stay non-empty
            if idx + 1 < len(spans):
                nxt = spans[idx + 1][0]
                for k in range(K):
                    moves.append(
                        [
                            (g, nxt, k)
                            for g in range(last - num_s + 1, last + 1)
                        ]
                    )
            if idx > 0:
                prv = spans[idx - 1][0]
                for k in range(K):
                    moves.append(
                        [(g, prv, k) for g in range(first, first + num_s)]
                    )
    return moves


def greedy_adabits(
    problem: PlanningProblem,
    quality_budget: Optional[float] = None,
) -> Optional[ILPSolution]:
    """Greedy quality-first start: capacity-proportional contiguous split,
    then per-group bit upgrades by best quality gain per stage.

    A non-ILP stand-in for the *adabits* warm start so the heuristic path
    never pays a branch-and-bound solve; the hill climb repairs any
    latency slack it leaves.
    """
    G, N, K = problem.n_groups, problem.n_stages, problem.n_bits
    cap = np.maximum(problem.capacity, 0.0)
    if cap.sum() <= 0:
        return None
    mem_min = problem.mem[:, 0]
    # Contiguous counts proportional to capacity, each stage non-empty.
    raw = cap / cap.sum() * G
    counts = np.maximum(np.floor(raw).astype(int), 1)
    while counts.sum() > G:
        j = int(np.argmax(counts))
        if counts[j] <= 1:
            return None
        counts[j] -= 1
    while counts.sum() < G:
        counts[int(np.argmax(raw - counts))] += 1
    # Repair min-bits overflows by shifting boundary groups outward.
    worst_group = float(mem_min.max())
    max_groups = np.floor(cap / max(worst_group, 1.0)).astype(int)
    if max_groups.sum() < G:
        return None
    for _ in range(4 * G):
        over = np.where(counts > max_groups)[0]
        if over.size == 0:
            break
        j = int(over[0])
        left = max_groups[j - 1] - counts[j - 1] if j > 0 else -1
        right = max_groups[j + 1] - counts[j + 1] if j + 1 < N else -1
        if right >= left and j + 1 < N:
            counts[j] -= 1
            counts[j + 1] += 1
        elif j > 0:
            counts[j] -= 1
            counts[j - 1] += 1
        else:
            return None
        if counts.min() < 1:
            return None
    else:
        return None
    if np.any(counts > max_groups):
        return None

    stage: List[int] = []
    for j, c in enumerate(counts):
        stage.extend([j] * int(c))
    kidx = [0] * G
    # Upgrade bits greedily per stage by quality gain, within memory.
    for j in range(N):
        gs = [g for g in range(G) if stage[g] == j]
        slack = float(cap[j] - sum(problem.mem[g, 0] for g in gs))
        while True:
            best_g, best_gain, best_cost = -1, 0.0, 0.0
            for g in gs:
                k = kidx[g]
                if k + 1 >= K:
                    continue
                cost = problem.mem[g, k + 1] - problem.mem[g, k]
                if cost > slack:
                    continue
                gain = problem.omega[g, k] - problem.omega[g, k + 1]
                if gain > best_gain:
                    best_g, best_gain, best_cost = g, gain, cost
            if best_g < 0:
                break
            kidx[best_g] += 1
            slack -= best_cost
    bits = tuple(problem.bit_choices[k] for k in kidx)
    quality = problem.quality_sum(bits)
    if quality_budget is not None and quality > quality_budget + 1e-12:
        return None
    return ILPSolution(
        assign_stage=tuple(stage),
        assign_bits=bits,
        objective=quality,
        latency_s=problem.latency_estimate(stage, bits),
        quality=quality,
        solve_time_s=0.0,
        status="greedy-adabits",
    )


def bitwidth_transfer(
    problem: PlanningProblem,
    theta: float = 10.0,
    quality_budget: Optional[float] = None,
    time_limit_s: float = 60.0,
    max_iters: int = 200,
    start: Optional[ILPSolution] = None,
) -> Optional[ILPSolution]:
    """Heuristic solve of one planning subproblem; ``None`` if infeasible.

    ``start`` lets the caller reuse one *adabits* warm start across many
    (eta, xi) subproblems of the same ordering.
    """
    t0 = time.perf_counter()
    bit_to_k = {b: k for k, b in enumerate(problem.bit_choices)}

    def make_state(sol: ILPSolution) -> _State:
        return _State.build(
            problem,
            sol.assign_stage,
            [bit_to_k[b] for b in sol.assign_bits],
        )

    if start is None:
        start = greedy_adabits(problem, quality_budget=quality_budget)
    if start is None:
        start = solve_adabits(
            problem, quality_budget=quality_budget, time_limit_s=time_limit_s
        )
    if start is None:
        return None
    state = make_state(start)
    best = _objective_from_aggregates(problem, state, theta, quality_budget)
    if not np.isfinite(best):
        # A reused warm start may violate this subproblem's constraints;
        # fall back to a fresh greedy (then exact) adabits solve.
        start = greedy_adabits(problem, quality_budget=quality_budget)
        if start is None:
            start = solve_adabits(
                problem, quality_budget=quality_budget, time_limit_s=time_limit_s
            )
        if start is None:
            return None
        state = make_state(start)
        best = _objective_from_aggregates(problem, state, theta, quality_budget)
        if not np.isfinite(best):
            return None

    for _ in range(max_iters):
        best_move: Optional[List[Tuple[int, int, int]]] = None
        best_val = best
        for changes in _candidate_changes(problem, state):
            saved = [(state.stage[g], state.kidx[g]) for g, _, _ in changes]
            state.apply(problem, changes)
            val = _objective_from_aggregates(
                problem, state, theta, quality_budget
            )
            state.revert(problem, changes, saved)
            if val < best_val - 1e-9:
                best_val = val
                best_move = changes
        if best_move is None:
            break
        state.apply(problem, best_move)
        best = best_val
        if time.perf_counter() - t0 > time_limit_s:
            break

    assign_stage = tuple(state.stage)
    assign_bits = tuple(problem.bit_choices[k] for k in state.kidx)
    latency = problem.latency_estimate(assign_stage, assign_bits)
    quality = problem.quality_sum(assign_bits)
    return ILPSolution(
        assign_stage=assign_stage,
        assign_bits=assign_bits,
        objective=best,
        latency_s=latency,
        quality=quality,
        solve_time_s=time.perf_counter() - t0,
        status="heuristic",
    )
