"""Tests for the analytic quality model and perplexity evaluation."""

import numpy as np
import pytest

from repro.models import get_model
from repro.quality import (
    AnalyticQualityModel,
    BASE_PPL,
    evaluate_assignment,
    evaluate_ppl,
    next_token_accuracy,
)

BITS = (3, 4, 8, 16)


@pytest.fixture(scope="module")
def qm30():
    return AnalyticQualityModel.for_model(get_model("opt-30b"), BITS)


def test_fp16_gives_base_ppl(qm30):
    assert qm30.uniform_ppl(16) == pytest.approx(BASE_PPL["opt-30b"])


def test_ppl_ordering_over_uniform_bits(qm30):
    assert (
        qm30.uniform_ppl(16)
        <= qm30.uniform_ppl(8)
        < qm30.uniform_ppl(4)
        < qm30.uniform_ppl(3)
    )


def test_int8_nearly_lossless(qm30):
    """Sec. IV-B: INT8 incurs little degradation."""
    rel = qm30.uniform_ppl(8) / qm30.uniform_ppl(16) - 1
    assert rel < 0.005


def test_int4_few_percent(qm30):
    rel = qm30.uniform_ppl(4) / qm30.uniform_ppl(16) - 1
    assert 0.005 < rel < 0.10


def test_accuracy_inversely_tracks_ppl(qm30):
    L = qm30.spec.num_layers
    acc16 = qm30.accuracy([16] * L)
    acc3 = qm30.accuracy([3] * L)
    assert acc16 > acc3


def test_mixed_better_than_uniform_low(qm30):
    L = qm30.spec.num_layers
    rng = np.random.default_rng(0)
    mixed = [int(b) for b in rng.choice([4, 8], size=L)]
    assert qm30.avg_ppl(mixed) < qm30.uniform_ppl(4)
    assert qm30.avg_ppl(mixed) > qm30.uniform_ppl(8)


def test_per_dataset_multipliers(qm30):
    L = qm30.spec.num_layers
    per = qm30.per_dataset_ppl([4] * L)
    assert per["ptb"] > per["c4"] > per["wikitext2"]
    assert np.mean(list(per.values())) == pytest.approx(
        qm30.avg_ppl([4] * L), rel=0.01
    )


def test_wrong_assignment_length_rejected(qm30):
    with pytest.raises(ValueError):
        qm30.avg_ppl([4] * 3)


def test_unknown_bitwidth_rejected(qm30):
    with pytest.raises(ValueError):
        qm30.avg_ppl([5] * qm30.spec.num_layers)


def test_hidden_truth_differs_from_indicator(qm30):
    """The planner's indicator must not equal the ground truth —
    otherwise Table V would be trivial."""
    from repro.quant import normalized_indicator_table

    omega = normalized_indicator_table(qm30.spec, BITS)
    ratio = qm30.true_sens[:, 1] / np.maximum(omega[:, 1], 1e-12)
    assert np.std(ratio) > 0.05


def test_truth_correlates_with_indicator(qm30):
    from repro.quant import normalized_indicator_table

    omega = normalized_indicator_table(qm30.spec, BITS)
    corr = np.corrcoef(qm30.true_sens[:, 1], omega[:, 1])[0, 1]
    assert corr > 0.6


def test_evaluate_ppl_and_assignment(tiny_model, tiny_corpora):
    ppls = evaluate_ppl(tiny_model, tiny_corpora)
    assert set(ppls) == {"wikitext2", "ptb", "c4"}
    rep = evaluate_assignment(
        tiny_model, [4] * tiny_model.config.layers, tiny_corpora
    )
    assert rep.avg_ppl == pytest.approx(
        np.mean(list(rep.per_corpus_ppl.values()))
    )
    assert 0.0 <= rep.accuracy <= 1.0


def test_next_token_accuracy_beats_chance(tiny_model, tiny_corpora):
    acc = next_token_accuracy(tiny_model, tiny_corpora["wikitext2"])
    assert acc > 1.5 / tiny_model.config.vocab
