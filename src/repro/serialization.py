"""Plan, fault-plan and trace (de)serialization.

The assigner runs offline, once per (model, cluster); production runtimes
load the resulting plan at startup.  Plans therefore need a stable
on-disk format: plain JSON, schema-versioned, round-trip exact.

Fault plans and simulator traces get the same treatment so fault
campaigns are replayable from disk and golden-trace regression fixtures
(`tests/data/`) can be compared exactly.  Trace floats are rounded to 12
significant digits at serialization time: enough to be bit-stable across
platforms for the pure-arithmetic roofline timing, while still exact on
re-parse (``float(repr12(x)) == round12(x)``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Union

from .plan import ExecutionPlan, StagePlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .pipeline.simulator import DegradedSimResult, PipelineSimResult
    from .runtime.faults import FaultPlan, FaultRecord, FaultSpec

SCHEMA_VERSION = 1
FAULT_SCHEMA_VERSION = 1
TRACE_SCHEMA_VERSION = 1


def plan_to_dict(plan: ExecutionPlan) -> Dict[str, Any]:
    """A JSON-safe dict representation of a plan."""
    return {
        "schema_version": SCHEMA_VERSION,
        "model_name": plan.model_name,
        "prefill_microbatch": plan.prefill_microbatch,
        "decode_microbatch": plan.decode_microbatch,
        "bit_kv": plan.bit_kv,
        "stages": [
            {
                "device_ids": list(st.device_ids),
                "gpu_name": st.gpu_name,
                "layer_start": st.layer_start,
                "layer_bits": list(st.layer_bits),
            }
            for st in plan.stages
        ],
    }


def plan_from_dict(data: Dict[str, Any]) -> ExecutionPlan:
    """Reconstruct a plan; validates the schema version."""
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported plan schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    stages = tuple(
        StagePlan(
            device_ids=tuple(int(d) for d in st["device_ids"]),
            gpu_name=str(st["gpu_name"]),
            layer_start=int(st["layer_start"]),
            layer_bits=tuple(int(b) for b in st["layer_bits"]),
        )
        for st in data["stages"]
    )
    return ExecutionPlan(
        model_name=str(data["model_name"]),
        stages=stages,
        prefill_microbatch=int(data["prefill_microbatch"]),
        decode_microbatch=int(data["decode_microbatch"]),
        bit_kv=int(data.get("bit_kv", 16)),
    )


def dumps_plan(plan: ExecutionPlan, indent: int = 2) -> str:
    """Serialize a plan to a JSON string."""
    return json.dumps(plan_to_dict(plan), indent=indent, sort_keys=True)


def loads_plan(text: str) -> ExecutionPlan:
    """Parse a plan from a JSON string."""
    return plan_from_dict(json.loads(text))


def save_plan(plan: ExecutionPlan, path: Union[str, Path]) -> None:
    """Write a plan to ``path`` as JSON."""
    Path(path).write_text(dumps_plan(plan) + "\n")


def load_plan(path: Union[str, Path]) -> ExecutionPlan:
    """Read a plan written by :func:`save_plan`."""
    return loads_plan(Path(path).read_text())


# ---------------------------------------------------------------------------
# Fault plans and records
# ---------------------------------------------------------------------------


def fault_spec_to_dict(spec: "FaultSpec") -> Dict[str, Any]:
    """A JSON-safe dict of one scheduled fault."""
    return {
        "kind": spec.kind,
        "stage": spec.stage,
        "phase": spec.phase,
        "step": spec.step,
        "mb_id": spec.mb_id,
        "delay_s": spec.delay_s,
    }


def fault_spec_from_dict(data: Dict[str, Any]) -> "FaultSpec":
    from .runtime.faults import FaultSpec

    mb_id = data.get("mb_id")
    return FaultSpec(
        kind=str(data["kind"]),
        stage=int(data["stage"]),
        phase=str(data.get("phase", "decode")),
        step=int(data.get("step", 1)),
        mb_id=None if mb_id is None else int(mb_id),
        delay_s=float(data.get("delay_s", 0.0)),
    )


def fault_plan_to_dict(plan: "FaultPlan") -> Dict[str, Any]:
    """A JSON-safe dict of a fault campaign (round-trip exact)."""
    return {
        "schema_version": FAULT_SCHEMA_VERSION,
        "seed": plan.seed,
        "specs": [fault_spec_to_dict(s) for s in plan.specs],
    }


def fault_plan_from_dict(data: Dict[str, Any]) -> "FaultPlan":
    from .runtime.faults import FaultPlan

    version = data.get("schema_version")
    if version != FAULT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported fault-plan schema version {version!r} "
            f"(expected {FAULT_SCHEMA_VERSION})"
        )
    return FaultPlan(
        specs=tuple(fault_spec_from_dict(s) for s in data["specs"]),
        seed=int(data.get("seed", 0)),
    )


def dumps_fault_plan(plan: "FaultPlan", indent: int = 2) -> str:
    return json.dumps(fault_plan_to_dict(plan), indent=indent, sort_keys=True)


def loads_fault_plan(text: str) -> "FaultPlan":
    return fault_plan_from_dict(json.loads(text))


def fault_record_to_dict(rec: "FaultRecord") -> Dict[str, Any]:
    """Runtime recovery telemetry as a JSON-safe dict (one-way)."""
    return {
        "kind": rec.kind,
        "dead_stages": list(rec.dead_stages),
        "dead_devices": list(rec.dead_devices),
        "committed_tokens": rec.committed_tokens,
        "action": rec.action,
        "detail": rec.detail,
    }


# ---------------------------------------------------------------------------
# Simulator traces (golden-fixture format)
# ---------------------------------------------------------------------------


def round_trace_float(x: float) -> float:
    """Round to 12 significant digits — the golden-fixture float grain."""
    return float(f"{float(x):.12g}")


def sim_result_to_dict(res: "PipelineSimResult") -> Dict[str, Any]:
    """A JSON-safe dict of one simulated batch (floats rounded)."""
    return {
        "makespan_s": round_trace_float(res.makespan_s),
        "prefill_span_s": round_trace_float(res.prefill_span_s),
        "decode_span_s": round_trace_float(res.decode_span_s),
        "total_tokens": res.total_tokens,
        "stage_busy_s": [round_trace_float(b) for b in res.stage_busy_s],
        "stage_memory_bytes": list(res.stage_memory_bytes),
        "events_processed": res.events_processed,
    }


def degraded_result_to_dict(res: "DegradedSimResult") -> Dict[str, Any]:
    """A JSON-safe dict of one degraded (faulty) simulation.

    This is the golden-trace payload: makespan, per-segment results,
    recovery events and the per-attempt plans, floats rounded so the
    fixture compares exactly across runs and platforms.
    """
    return {
        "schema_version": TRACE_SCHEMA_VERSION,
        "makespan_s": round_trace_float(res.makespan_s),
        "total_tokens": res.total_tokens,
        "replans": res.replans,
        "plans": [plan_to_dict(p) for p in res.plans],
        "segments": [sim_result_to_dict(s) for s in res.segments],
        "fault_events": [
            {
                "time_s": round_trace_float(ev.time_s),
                "kind": ev.kind,
                "stage": ev.stage,
                "phase": ev.phase,
                "step": ev.step,
                "action": ev.action,
                "detail": ev.detail,
            }
            for ev in res.fault_events
        ],
    }


def dumps_degraded_result(res: "DegradedSimResult", indent: int = 2) -> str:
    """Canonical golden-fixture text: sorted keys, trailing newline."""
    return (
        json.dumps(degraded_result_to_dict(res), indent=indent, sort_keys=True)
        + "\n"
    )
