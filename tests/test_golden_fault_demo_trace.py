"""Golden normalized span trace of ``examples/fault_tolerance_demo.py``.

The demo is deterministic end to end (seeded prompts, a fixed fault
plan, pure-arithmetic simulator timing), so its *normalized* trace —
ancestor paths, names, statuses and attributes, with every timestamp,
duration, thread name and span id stripped — is byte-stable across runs
and platforms.  The fixture pins the whole observable span taxonomy of a
plan→serve→recover→simulate run: a silent change to what gets traced
(or to the recovery control flow) fails this test.

Regenerate after an intentional change with
``PYTHONPATH=src python scripts/regen_golden_traces.py`` and review the
fixture diff like any other code change.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import normalize_trace

REPO = Path(__file__).resolve().parent.parent
DEMO = REPO / "examples" / "fault_tolerance_demo.py"
FIXTURE = REPO / "tests" / "data" / "fault_demo_trace.norm.jsonl"

REGEN_HINT = (
    "normalized fault-demo trace changed; if intentional run "
    "`PYTHONPATH=src python scripts/regen_golden_traces.py` and review "
    "the fixture diff"
)


def run_demo_trace(tmp_path: Path) -> str:
    """Run the demo traced in a subprocess; return the normalized trace."""
    trace_path = tmp_path / "fault_demo.jsonl"
    env = dict(os.environ)
    env["SPLITQUANT_TRACE"] = str(trace_path)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, str(DEMO)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(REPO),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "bit-identical" in proc.stdout
    return normalize_trace(trace_path)


@pytest.fixture(scope="module")
def demo_trace(tmp_path_factory) -> str:
    return run_demo_trace(tmp_path_factory.mktemp("fault_demo"))


def test_fault_demo_trace_matches_golden(demo_trace):
    assert FIXTURE.exists(), f"missing fixture {FIXTURE}; run the regen script"
    assert demo_trace == FIXTURE.read_text(), REGEN_HINT


def test_fixture_is_normalized_canonical():
    """The committed fixture is already in normalized canonical form."""
    text = FIXTURE.read_text()
    records = [json.loads(line) for line in text.splitlines()]
    assert records, "fixture is empty"
    # renumbered, sorted, and stripped of timing/scheduling fields
    assert [r["i"] for r in records] == list(range(len(records)))
    for r in records:
        assert set(r) == {"path", "name", "status", "attrs", "i"}
    keys = [
        (r["path"], json.dumps(r["attrs"], sort_keys=True), r["status"])
        for r in records
    ]
    assert keys == sorted(keys)


def test_trace_covers_the_recovery_timeline(demo_trace):
    """The span taxonomy includes the fault→detect→replan→replay story."""
    names = {json.loads(line)["name"] for line in demo_trace.splitlines()}
    for expected in (
        "runtime.generate",
        "runtime.attempt",
        "runtime.prefill",
        "runtime.decode",
        "runtime.step",
        "runtime.commit",
        "runtime.recover",
        "runtime.replan",
        "sim.run",
        "sim.degraded",
        "sim.fault",
        "planner.degrade",
    ):
        assert expected in names, f"span {expected!r} missing from demo trace"
