"""Fig. 10: throughput on severely heterogeneous clusters (custom backend).

Legacy-GPU clusters 5-8 of Table III serving OPT-30B/66B with the smaller
DeepSpeed-style workload (batch 32, prompt 512).  Uniform OOMs or barely
fits in most configurations; the paper reports a 108% average improvement
over the Het baseline; 0 tokens/s encodes OOM.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..hardware.cluster import table_iii_cluster
from ..models.architectures import get_model
from ..workloads.spec import BatchWorkload
from .common import compare_policies
from .harness import ExperimentResult

CLUSTER_MODELS: Dict[int, str] = {
    5: "opt-30b",
    6: "opt-30b",
    7: "opt-66b",
    8: "opt-30b",
}


def run(
    clusters: Sequence[int] = (5, 6, 7, 8),
    batch: int = 32,
    prompt: int = 512,
    output: int = 100,
    seed: int = 0,
) -> ExperimentResult:
    rows = []
    speedups = []
    for idx in clusters:
        cluster = table_iii_cluster(idx)
        model_name = CLUSTER_MODELS[idx]
        spec = get_model(model_name)
        wl = BatchWorkload(batch=batch, prompt_len=prompt, output_len=output)
        cmp = compare_policies(spec, cluster, wl)
        sp = cmp.speedup_vs_het
        if np.isfinite(sp) and sp > 0:
            speedups.append(sp)
        rows.append(
            [
                f"cluster-{idx}",
                model_name,
                cmp.uniform_tput,
                cmp.het_tput,
                cmp.splitquant_tput,
                sp if np.isfinite(sp) else float("nan"),
            ]
        )
    mean_speedup = float(np.mean(speedups)) if speedups else 0.0
    return ExperimentResult(
        name="fig10",
        title="Severe heterogeneity, custom backend (0 tok/s = OOM)",
        headers=["cluster", "model", "uniform_tps", "het_tps",
                 "splitquant_tps", "speedup_vs_het"],
        rows=rows,
        summary={"mean_speedup_vs_het": mean_speedup},
        notes=(
            "Paper: Uniform mostly OOM; SplitQuant ~2.08x average over Het."
        ),
    )
