#!/usr/bin/env python
"""Long-context understanding (LooGLE-style) on a mixed V100/A100 cluster.

The paper's second workload: very long inputs (~97k tokens on average)
with short outputs (~63 tokens).  Long contexts change everything:

* the KV cache, not the weights, dominates memory — batch admission is
  KV-budget-limited,
* prefill is chunked (Sarathi-style, 2048-token chunks) into ``kappa``
  pipeline jobs per request,
* prefill dominates end-to-end time, so phase-aware partitioning matters
  more than decode bandwidth.

Run:  python examples/long_context_audit.py
"""

import dataclasses

import numpy as np

from repro import (
    BatchWorkload,
    PlannerConfig,
    SplitQuantPlanner,
    get_model,
    simulate_plan,
    table_iii_cluster,
)
from repro.baselines import plan_uniform_baseline
from repro.experiments.common import cost_model_for, feasible_batch
from repro.models import kv_cache_bytes, weight_storage_bytes
from repro.workloads import sample_dataset


def main() -> None:
    spec = get_model("qwen2.5-32b")
    cluster = table_iii_cluster(2)  # 2x V100 + 1x A100
    print(f"serving {spec.name} on {cluster.describe()}\n")

    # Sample LooGLE-like lengths; clip prompts to the model context.
    lengths = sample_dataset("loogle", 2048, seed=0)
    prompt = int(
        min(np.percentile(lengths.prompt_lens, 50),
            spec.max_position_embeddings - 512, 16_384)
    )
    output = max(int(lengths.output_lens.mean()), 8)

    # KV-budget-driven admission: how many requests fit concurrently?
    batch = feasible_batch(spec, cluster, prompt, output)
    wl = BatchWorkload(batch=batch, prompt_len=prompt, output_len=output)
    kv_per_req = spec.num_layers * kv_cache_bytes(spec, 1, wl.context_len)
    w16 = spec.num_layers * weight_storage_bytes(spec, 16)
    print(f"workload: {wl.describe()}")
    print(f"  KV cache per request : {kv_per_req / 2**30:.2f} GiB")
    print(f"  FP16 weights (total) : {w16 / 2**30:.1f} GiB")
    print(f"  admitted batch       : {batch} concurrent requests")
    print(f"  prefill chunks/req   : kappa = {wl.kappa}\n")

    cm = cost_model_for(spec, cluster)
    cfg = PlannerConfig(
        group_size=4,
        max_orderings=6,
        microbatch_candidates=tuple(sorted({max(batch // 2, 1), batch})),
        time_limit_s=20.0,
    )
    planner = SplitQuantPlanner(spec, cluster, cfg, cost_model=cm)
    uniform = plan_uniform_baseline(spec, cluster, wl)
    ref_bits = uniform.bits if uniform else 3
    planner = SplitQuantPlanner(
        spec,
        cluster,
        dataclasses.replace(cfg, quality_budget=planner.uniform_quality(ref_bits)),
        cost_model=cm,
    )
    result = planner.plan(wl)
    if result is None:
        raise SystemExit("no feasible plan")
    print(f"plan: {result.plan.describe()}")

    sim = simulate_plan(result.plan, cluster, spec, wl)
    share = sim.prefill_span_s / sim.makespan_s
    print(f"  throughput    : {sim.throughput_tokens_s:.1f} tokens/s")
    print(f"  prefill share : {share:.0%} of the makespan "
          "(long-context serving is prefill-bound)")

    if uniform is not None:
        base = simulate_plan(uniform.plan, cluster, spec, wl)
        print(
            f"\nUniform ({uniform.bits}-bit): "
            f"{base.throughput_tokens_s:.1f} tokens/s -> "
            f"{sim.throughput_tokens_s / base.throughput_tokens_s:.2f}x speedup"
        )
    else:
        print("\nUniform baseline: OOM at every precision")


if __name__ == "__main__":
    main()
