#!/usr/bin/env python
"""Schedule a multi-job queue onto the idle long tail of a GPU fleet.

The paper's Fig. 1 shows a production fleet whose A100s run hot while
most capacity — T4s, V100s, P100s — idles.  This demo actually *uses*
that idle capacity:

1. samples the Fig. 1 fleet and carves a mixed schedulable pool
   (>= 24 GPUs) out of its idle capacity,
2. draws a seeded queue of 8 offline serving jobs (mixed models, batch
   shapes, deadline classes, per-job quality SLOs),
3. schedules the queue twice — once with the greedy bin-packing
   baseline, once with the beam/lookahead allocator — each job's group
   planned by the SplitQuant planner through a shared memoized pool,
4. replays both schedules through the discrete-event fleet simulator
   and verifies the beam allocator beats greedy on aggregate tokens/s,
5. kills one GPU of the busiest job mid-schedule and repairs the
   schedule (degrade-and-replan via ``planner.replan`` + ``ClusterDelta``),
6. reports the headline metric: idle GPU-hours reclaimed vs the Fig. 1
   baseline.

Set ``SPLITQUANT_TRACE=trace.jsonl`` to capture fleet.schedule /
fleet.plan_group / fleet.simulate spans.

Run:  PYTHONPATH=src python examples/fleet_scheduler_demo.py
"""

from repro.fleet import (
    FleetScheduler,
    compare_allocators,
    make_job_queue,
    simulate_schedule,
)
from repro.hardware.fleet import sample_fleet, schedulable_inventory


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The Fig. 1 fleet and its schedulable idle slice.
    # ------------------------------------------------------------------
    stats = sample_fleet(seed=0)
    inventory = schedulable_inventory(stats, pool_gpus=24)
    total = sum(inventory.values())
    assert total >= 24, inventory
    print(f"fleet sample: {stats.total} GPUs, pool of {total}:")
    for gpu, n in sorted(inventory.items()):
        print(
            f"  {n:3d}x {gpu:<9}  "
            f"(fleet util {100 * stats.utilization[gpu]:.0f}%)"
        )

    # ------------------------------------------------------------------
    # 2. The offline job queue.
    # ------------------------------------------------------------------
    jobs = make_job_queue(n_jobs=8, seed=0)
    assert len(jobs) >= 8
    print(f"\njob queue ({len(jobs)} jobs):")
    for job in jobs:
        print("  " + job.describe())

    # ------------------------------------------------------------------
    # 3. Greedy baseline vs beam/lookahead allocator.
    # ------------------------------------------------------------------
    schedules = compare_allocators(jobs, inventory)
    sims = {
        name: simulate_schedule(sched)
        for name, sched in schedules.items()
    }
    print()
    for name in sorted(sims):
        sim = sims[name]
        sched = schedules[name]
        print(
            f"{name:>6}: {len(sim.jobs)} jobs scheduled, "
            f"makespan {sim.makespan_s:8.1f}s, "
            f"aggregate {sim.throughput_tokens_s:7.0f} tok/s "
            f"(pool: {sched.pool_stats['evaluations']} plans, "
            f"{sched.pool_stats['cache_hits']} cache hits)"
        )

    greedy, beam = sims["greedy"], sims["beam"]
    assert len(beam.jobs) == len(jobs), "beam left jobs unscheduled"
    assert beam.throughput_tokens_s > greedy.throughput_tokens_s, (
        f"beam ({beam.throughput_tokens_s:.0f} tok/s) must beat greedy "
        f"({greedy.throughput_tokens_s:.0f} tok/s)"
    )
    speedup = beam.throughput_tokens_s / greedy.throughput_tokens_s
    print(f"\nbeam beats greedy by {speedup:.2f}x on aggregate tokens/s")

    # ------------------------------------------------------------------
    # 4. A GPU gets reclaimed mid-schedule; repair the plan.
    # ------------------------------------------------------------------
    scheduler = FleetScheduler(inventory, allocator="beam")
    schedule = schedules["beam"]
    victim = max(schedule.jobs, key=lambda sj: sj.group.total)
    dead_gpu = victim.group.counts[0][0]
    print(
        f"\nowner reclaims one {dead_gpu} from {victim.job.job_id} "
        f"(group {victim.group.describe()})"
    )
    repaired = scheduler.reschedule_after_failure(
        schedule, victim.job.job_id, dead_gpu=dead_gpu
    )
    repaired_sim = simulate_schedule(repaired)
    assert all(
        sj.group.fits(repaired.inventory) for sj in repaired.jobs
    )
    print(
        f"repaired: {len(repaired.jobs)} jobs on "
        f"{sum(repaired.inventory.values())} GPUs, "
        f"makespan {repaired_sim.makespan_s:.1f}s, "
        f"aggregate {repaired_sim.throughput_tokens_s:.0f} tok/s"
    )

    # ------------------------------------------------------------------
    # 5. The headline: reclaimed idle GPU-hours vs Fig. 1.
    # ------------------------------------------------------------------
    recovery = beam.idle_recovery(stats)
    print("\nidle-hour recovery vs the Fig. 1 baseline:")
    for gpu, row in recovery["per_type"].items():
        print(
            f"  {gpu:<9} idle {row['idle_gpu_hours'] / 1e3:8.1f} kGPUh/mo, "
            f"pool util {100 * row['pool_utilization']:5.1f}%, "
            f"reclaimed {row['reclaimed_gpu_hours'] / 1e3:8.1f} kGPUh/mo"
        )
    print(
        f"  total: {recovery['total_reclaimed_gpu_hours'] / 1e3:.1f} of "
        f"{recovery['total_idle_gpu_hours'] / 1e3:.1f} kGPUh/mo idle "
        f"reclaimed ({100 * recovery['reclaimed_fraction']:.1f}%)"
    )
    assert recovery["total_reclaimed_gpu_hours"] > 0

    print("\nfleet scheduler demo OK")


if __name__ == "__main__":
    main()
