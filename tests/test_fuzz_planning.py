"""Randomized cross-validation of the solvers on synthetic problems.

Builds small PlanningProblems with arbitrary (seeded) cost tensors —
decoupled from any model/GPU semantics — and checks the ILP against
exhaustive enumeration, and the heuristic against feasibility and
monotonicity invariants.  This probes solver corners the structured
experiments never reach.
"""

import numpy as np
import pytest

from repro.core import brute_force_solve, solve_adabits, solve_partition_ilp
from repro.core.costs import PlanningProblem, StageGroup
from repro.core.heuristic import bitwidth_transfer, greedy_adabits
from repro.hardware import get_gpu
from repro.workloads import BatchWorkload

BITS = (4, 16)


def random_problem(seed: int, n_groups: int = 5, n_stages: int = 2):
    """A synthetic planning problem with random-but-consistent tensors."""
    rng = np.random.default_rng(seed)
    G, N, K = n_groups, n_stages, len(BITS)
    gpu = get_gpu("V100")
    ordering = tuple(
        StageGroup(device_ids=(j,), gpu=gpu) for j in range(N)
    )
    # Costs: per-stage speed factor x per-bit factor (lower bits faster
    # decode, slower-or-equal prefill), plus jitter.
    stage_speed = rng.uniform(0.5, 3.0, size=N)
    l_pre = np.zeros((G, N, K))
    l_dec = np.zeros((G, N, K))
    for k, b in enumerate(BITS):
        pre_f = 1.0 + (0.1 if b < 16 else 0.0)
        dec_f = b / 16.0
        for j in range(N):
            l_pre[:, j, k] = (
                0.01 * stage_speed[j] * pre_f * rng.uniform(0.8, 1.2, size=G)
            )
            l_dec[:, j, k] = (
                0.002 * stage_speed[j] * dec_f * rng.uniform(0.8, 1.2, size=G)
            )
    mem = np.zeros((G, K))
    mem[:, 0] = rng.uniform(0.5, 1.5, size=G)
    mem[:, 1] = mem[:, 0] * 4.0
    omega = np.zeros((G, K))
    omega[:, 0] = rng.uniform(0.1, 2.0, size=G)
    # Capacity: somewhere between all-min-bits and all-max-bits.
    total_min, total_max = mem[:, 0].sum(), mem[:, 1].sum()
    capacity = np.full(N, rng.uniform(total_min * 1.2, total_max) / N * 1.3)
    wl = BatchWorkload(batch=8, prompt_len=128, output_len=16)
    return PlanningProblem(
        spec=None,  # solvers never touch the spec
        workload=wl,
        ordering=ordering,
        eta=4,
        xi=4,
        bit_choices=BITS,
        group_sizes=(1,) * G,
        l_pre=l_pre,
        l_dec=l_dec,
        mem=mem,
        omega=omega,
        const_pre=rng.uniform(0, 1e-3, size=N),
        const_dec=rng.uniform(0, 1e-4, size=N),
        capacity=capacity,
        comm_pre=rng.uniform(0, 1e-3, size=N - 1),
        comm_dec=rng.uniform(0, 1e-4, size=N - 1),
    )


@pytest.mark.parametrize("seed", range(12))
def test_ilp_matches_brute_force_on_random_problems(seed):
    problem = random_problem(seed)
    theta = 0.05
    ilp = solve_partition_ilp(problem, theta=theta, time_limit_s=20.0)
    ref = brute_force_solve(problem, theta=theta)
    assert (ilp is None) == (ref is None)
    if ilp is None:
        return
    obj_ilp = problem.latency_estimate(
        ilp.assign_stage, ilp.assign_bits
    ) + theta * ilp.quality
    obj_ref = problem.latency_estimate(
        ref.assign_stage, ref.assign_bits
    ) + theta * ref.quality
    assert obj_ilp <= obj_ref * 1.002 + 1e-9


@pytest.mark.parametrize("seed", range(12))
def test_heuristic_feasible_and_competitive(seed):
    problem = random_problem(seed)
    theta = 0.05
    heu = bitwidth_transfer(problem, theta=theta, time_limit_s=20.0)
    ref = brute_force_solve(problem, theta=theta)
    assert (heu is None) == (ref is None)
    if heu is None:
        return
    assert problem.memory_ok(heu.assign_stage, heu.assign_bits)
    assert list(heu.assign_stage) == sorted(heu.assign_stage)
    obj_heu = problem.latency_estimate(
        heu.assign_stage, heu.assign_bits
    ) + theta * heu.quality
    obj_ref = problem.latency_estimate(
        ref.assign_stage, ref.assign_bits
    ) + theta * ref.quality
    assert obj_heu <= obj_ref * 1.35 + 1e-9


@pytest.mark.parametrize("seed", range(8))
def test_adabits_quality_optimality_random(seed):
    problem = random_problem(seed)
    ada = solve_adabits(problem, time_limit_s=20.0)
    ref = brute_force_solve(problem, theta=1e9)
    assert (ada is None) == (ref is None)
    if ada is None:
        return
    assert ada.quality <= ref.quality * 1.02 + 1e-9


@pytest.mark.parametrize("seed", range(8))
def test_greedy_adabits_valid_on_random_problems(seed):
    problem = random_problem(seed)
    sol = greedy_adabits(problem)
    ref = brute_force_solve(problem, theta=1e9)
    if ref is None:
        # Greedy may only be more conservative, never less.
        assert sol is None or problem.memory_ok(
            sol.assign_stage, sol.assign_bits
        )
        return
    if sol is not None:
        assert problem.memory_ok(sol.assign_stage, sol.assign_bits)
        assert list(sol.assign_stage) == sorted(sol.assign_stage)


@pytest.mark.parametrize("seed", range(6))
def test_quality_budget_binding_random(seed):
    problem = random_problem(seed)
    free = solve_partition_ilp(problem, theta=0.0, time_limit_s=20.0)
    if free is None or free.quality == 0.0:
        return
    budget = free.quality * 0.3
    constrained = solve_partition_ilp(
        problem, theta=0.0, quality_budget=budget, time_limit_s=20.0
    )
    if constrained is not None:
        assert constrained.quality <= budget + 1e-9
        # Tightening the budget can only slow the plan down.
        assert constrained.latency_s >= free.latency_s - 1e-9


def test_three_stage_random_problem():
    problem = random_problem(99, n_groups=6, n_stages=3)
    ilp = solve_partition_ilp(problem, theta=0.05, time_limit_s=20.0)
    ref = brute_force_solve(problem, theta=0.05)
    assert (ilp is None) == (ref is None)
    if ilp is not None:
        assert set(ilp.assign_stage) == {0, 1, 2}
