"""Decoder-only LLM architecture registry.

Layer *shapes* are all the planner needs (parameter counts, FLOPs, bytes
moved); they are taken from the public HuggingFace configs of the model
families the paper evaluates: OPT, BLOOM, Qwen2.5 and Llama-3.

Models with separate gate/up MLP projections (SwiGLU: Qwen, Llama) and
grouped-query attention are described exactly; OPT/BLOOM reduce to the
paper's ``4*h1^2 + 2*h1*h2`` decoder-layer weight formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Tuple


@dataclass(frozen=True)
class ModelSpec:
    """Architecture description of one decoder-only LLM."""

    name: str
    num_layers: int
    #: Transformer hidden dimension (paper's ``h1``).
    hidden: int
    #: MLP intermediate dimension (paper's ``h2``).
    ffn: int
    num_heads: int
    #: Key/value heads; < num_heads means grouped-query attention.
    num_kv_heads: int
    vocab_size: int
    #: Maximum sequence length the model supports.
    max_position_embeddings: int
    #: Word-embedding projection dimension (paper's ``d_t``); differs from
    #: ``hidden`` only for OPT-350m-style models with embed projections.
    embed_dim: int
    #: True when position embeddings are a learned table (OPT); rotary/ALiBi
    #: models carry no position-embedding parameters.
    learned_pos_embeddings: bool
    #: SwiGLU MLP has gate+up+down projections instead of up+down.
    gated_mlp: bool
    #: Input/output embeddings share storage.
    tie_word_embeddings: bool

    def __post_init__(self):
        if self.hidden % self.num_heads:
            raise ValueError(f"{self.name}: hidden not divisible by heads")
        if self.num_heads % self.num_kv_heads:
            raise ValueError(f"{self.name}: heads not divisible by kv heads")

    @property
    def head_dim(self) -> int:
        return self.hidden // self.num_heads

    @property
    def kv_dim(self) -> int:
        """Width of the K/V projections (== hidden without GQA)."""
        return self.num_kv_heads * self.head_dim

    @cached_property
    def linear_shapes(self) -> Tuple[Tuple[int, int], ...]:
        """(out, in) shapes of every linear operator in one decoder layer.

        Cached: queried per roofline kernel-time evaluation, which sits
        on the simulator's hottest path (``cached_property`` stores into
        the instance ``__dict__``, bypassing the frozen-dataclass guard).
        """
        h, kv, f = self.hidden, self.kv_dim, self.ffn
        attn = ((h, h), (kv, h), (kv, h), (h, h))  # q, k, v, o
        if self.gated_mlp:
            mlp = ((f, h), (f, h), (h, f))  # gate, up, down
        else:
            mlp = ((f, h), (h, f))  # up, down
        return attn + mlp

    @cached_property
    def decoder_linear_elements(self) -> int:
        """Linear-weight parameter count of one decoder layer (cached).

        For OPT/BLOOM this equals the paper's ``4*h1^2 + 2*h1*h2``.
        """
        return sum(o * i for o, i in self.linear_shapes)

    @property
    def decoder_norm_elements(self) -> int:
        """LayerNorm / RMSNorm (+bias) parameters of one decoder layer.

        The paper's ``6*h1`` covers LayerNorm weight+bias plus attention
        output bias terms (OPT-style); norm-only models use ``4*h1`` —
        we approximate RMSNorm models with ``2*h1``.
        """
        if self.gated_mlp:  # RMSNorm, no biases (Qwen/Llama)
            return 2 * self.hidden
        return 6 * self.hidden

    @property
    def embedding_elements(self) -> int:
        """Token + position embedding (+projection) parameter count."""
        n = self.vocab_size * self.embed_dim
        if self.learned_pos_embeddings:
            n += self.max_position_embeddings * self.embed_dim
        if self.embed_dim != self.hidden:
            n += 2 * self.hidden * self.embed_dim
        return n

    @property
    def lm_head_elements(self) -> int:
        """LM-head parameters (zero extra storage when tied)."""
        if self.tie_word_embeddings:
            return 0
        return self.vocab_size * self.embed_dim

    @property
    def total_params(self) -> int:
        per_layer = self.decoder_linear_elements + self.decoder_norm_elements
        return (
            self.num_layers * per_layer
            + self.embedding_elements
            + self.lm_head_elements
        )

    def describe(self) -> str:
        return (
            f"{self.name}: L={self.num_layers} h1={self.hidden} h2={self.ffn} "
            f"heads={self.num_heads}/{self.num_kv_heads} vocab={self.vocab_size} "
            f"params={self.total_params / 1e9:.2f}B"
        )


def _opt(name, layers, hidden, heads, embed_dim=None) -> ModelSpec:
    return ModelSpec(
        name=name,
        num_layers=layers,
        hidden=hidden,
        ffn=4 * hidden,
        num_heads=heads,
        num_kv_heads=heads,
        vocab_size=50272,
        max_position_embeddings=2048,
        embed_dim=embed_dim or hidden,
        learned_pos_embeddings=True,
        gated_mlp=False,
        tie_word_embeddings=True,
    )


def _bloom(name, layers, hidden, heads) -> ModelSpec:
    return ModelSpec(
        name=name,
        num_layers=layers,
        hidden=hidden,
        ffn=4 * hidden,
        num_heads=heads,
        num_kv_heads=heads,
        vocab_size=250880,
        max_position_embeddings=2048,  # ALiBi: soft limit, no pos table
        embed_dim=hidden,
        learned_pos_embeddings=False,
        gated_mlp=False,
        tie_word_embeddings=True,
    )


def _qwen(name, layers, hidden, ffn, heads, kv_heads) -> ModelSpec:
    return ModelSpec(
        name=name,
        num_layers=layers,
        hidden=hidden,
        ffn=ffn,
        num_heads=heads,
        num_kv_heads=kv_heads,
        vocab_size=152064,
        max_position_embeddings=32768,
        embed_dim=hidden,
        learned_pos_embeddings=False,
        gated_mlp=True,
        tie_word_embeddings=False,
    )


MODEL_REGISTRY: Dict[str, ModelSpec] = {
    m.name: m
    for m in [
        _opt("opt-125m", 12, 768, 12),
        _opt("opt-350m", 24, 1024, 16, embed_dim=512),
        _opt("opt-1.3b", 24, 2048, 32),
        _opt("opt-13b", 40, 5120, 40),
        _opt("opt-30b", 48, 7168, 56),
        _opt("opt-66b", 64, 9216, 72),
        _opt("opt-175b", 96, 12288, 96),
        _bloom("bloom-560m", 24, 1024, 16),
        _bloom("bloom-1b7", 24, 2048, 16),
        _bloom("bloom-3b", 30, 2560, 32),
        _bloom("bloom-176b", 70, 14336, 112),
        _qwen("qwen2.5-7b", 28, 3584, 18944, 28, 4),
        _qwen("qwen2.5-14b", 48, 5120, 13824, 40, 8),
        _qwen("qwen2.5-32b", 64, 5120, 27648, 40, 8),
        ModelSpec(
            name="llama-3.3-70b",
            num_layers=80,
            hidden=8192,
            ffn=28672,
            num_heads=64,
            num_kv_heads=8,
            vocab_size=128256,
            max_position_embeddings=131072,
            embed_dim=8192,
            learned_pos_embeddings=False,
            gated_mlp=True,
            tie_word_embeddings=False,
        ),
    ]
}

_ALIASES = {
    "7b-instruct": "qwen2.5-7b",
    "14b-instruct": "qwen2.5-14b",
    "32b-instruct": "qwen2.5-32b",
    "70b-instruct": "llama-3.3-70b",
}


def get_model(name: str) -> ModelSpec:
    """Look up a model spec by name (case-insensitive, aliases allowed)."""
    key = name.lower()
    key = _ALIASES.get(key, key)
    try:
        return MODEL_REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; known: {sorted(MODEL_REGISTRY)}"
        ) from None


def list_models() -> Tuple[str, ...]:
    return tuple(sorted(MODEL_REGISTRY))
