#!/usr/bin/env python
"""Regenerate the golden-trace fixtures in tests/data/.

Run after an *intentional* change to the discrete-event simulator, the
degraded-recovery mirror, or the observability span taxonomy, then
review the fixture diffs like any other code change:

    PYTHONPATH=src python scripts/regen_golden_traces.py

``tests/test_golden_traces.py`` compares the degraded-simulation JSON
fixtures byte-for-byte; ``tests/test_golden_fault_demo_trace.py``
compares the normalized span trace of the fault-tolerance demo.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))

from repro.obs import normalize_trace  # noqa: E402
from tests.golden_utils import regenerate_all  # noqa: E402


def _regen_demo_trace(demo: str, fixture_name: str) -> Path:
    """Traced subprocess run of a demo -> normalized fixture."""
    fixture = REPO / "tests" / "data" / fixture_name
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "demo.jsonl"
        env = dict(os.environ)
        env["SPLITQUANT_TRACE"] = str(trace_path)
        env["PYTHONPATH"] = str(REPO / "src")
        subprocess.run(
            [sys.executable, str(REPO / "examples" / demo)],
            env=env,
            check=True,
            cwd=str(REPO),
            stdout=subprocess.DEVNULL,
        )
        fixture.write_text(normalize_trace(trace_path))
    return fixture


def regen_fault_demo_trace() -> Path:
    return _regen_demo_trace(
        "fault_tolerance_demo.py", "fault_demo_trace.norm.jsonl"
    )


def regen_online_demo_trace() -> Path:
    return _regen_demo_trace(
        "online_serving_demo.py", "online_demo_trace.norm.jsonl"
    )


def main() -> int:
    for name, path in regenerate_all().items():
        print(f"wrote {path.relative_to(REPO)}  ({name})")
    path = regen_fault_demo_trace()
    print(f"wrote {path.relative_to(REPO)}  (fault_demo_trace)")
    path = regen_online_demo_trace()
    print(f"wrote {path.relative_to(REPO)}  (online_demo_trace)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
