"""TinyLM: a real decoder-only transformer in numpy.

This is the measurable stand-in for the paper's small evaluation models
(OPT-1.3B, BLOOM-3B): its weights are actually quantized (RTN or GPTQ),
its perplexity is actually computed, and its per-layer activations feed the
variance indicator — so indicator-vs-ground-truth experiments (Fig. 4,
Table I, Table V) run against real measurements rather than a model of a
model.

Architecture: pre-LN transformer with learned position embeddings, GELU
MLP, tied LM head; supports batched teacher-forced scoring, KV-cached
autoregressive generation, activation capture, and per-layer weight
quantization at mixed bitwidths.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..quant.gptq import gptq_quantize
from ..quant.indicator import OperatorStats, operator_stats_from_arrays
from ..quant.schemes import QuantConfig, quantize_dequantize

#: Names of the linear operators inside one decoder layer.
LINEAR_OPS = ("wq", "wk", "wv", "wo", "w1", "w2")


@dataclass(frozen=True)
class TinyLMConfig:
    """Shape of a TinyLM instance."""

    vocab: int = 256
    layers: int = 4
    hidden: int = 64
    ffn: int = 256
    heads: int = 4
    max_seq: int = 256
    seed: int = 0
    #: KV-cache storage precision; < 16 fake-quantizes K/V entries as they
    #: are written (the measurable counterpart of the planner's bit_kv).
    kv_bits: int = 16

    def __post_init__(self):
        if self.hidden % self.heads:
            raise ValueError("hidden must be divisible by heads")
        if self.kv_bits not in (4, 8, 16):
            raise ValueError("kv_bits must be 4, 8 or 16")


def _gelu(x: np.ndarray) -> np.ndarray:
    return 0.5 * x * (1.0 + np.tanh(0.7978845608 * (x + 0.044715 * x**3)))


def _layer_norm(x: np.ndarray, g: np.ndarray, b: np.ndarray) -> np.ndarray:
    mu = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mu) / np.sqrt(var + 1e-5) * g + b


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    x = x - x.max(axis=axis, keepdims=True)
    e = np.exp(x)
    return e / e.sum(axis=axis, keepdims=True)


@dataclass
class LayerWeights:
    """Parameters of one decoder layer."""

    ln1_g: np.ndarray
    ln1_b: np.ndarray
    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray
    ln2_g: np.ndarray
    ln2_b: np.ndarray
    w1: np.ndarray
    w2: np.ndarray

    def linear(self, name: str) -> np.ndarray:
        if name not in LINEAR_OPS:
            raise KeyError(f"unknown linear op {name!r}")
        return getattr(self, name)

    def copy(self) -> "LayerWeights":
        return LayerWeights(
            **{k: np.array(getattr(self, k)) for k in self.__dataclass_fields__}
        )


@dataclass
class KVCache:
    """Per-layer key/value cache for autoregressive decoding."""

    keys: List[np.ndarray]  # each (B, T, H) — grows along T
    values: List[np.ndarray]

    @property
    def length(self) -> int:
        return 0 if not self.keys else self.keys[0].shape[1]


def attention_forward(
    config: TinyLMConfig,
    lw: "LayerWeights",
    x: np.ndarray,
    cache: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
    """Multi-head causal attention over ``x`` (B, T, H).

    With ``cache`` (past K, past V) the new keys/values are appended and
    attention spans the full past.  Free function so pipeline-stage
    workers can run layer subsets without a full model instance.
    """
    B, T, H = x.shape
    hd = H // config.heads
    q = x @ lw.wq.T
    k = x @ lw.wk.T
    v = x @ lw.wv.T
    if config.kv_bits < 16:
        # Emulate low-precision KV-cache storage: entries are quantized
        # once on write and read back dequantized.
        kv_cfg = QuantConfig(
            bits=config.kv_bits, symmetric=True, granularity="tensor"
        )
        k = quantize_dequantize(k, kv_cfg)
        v = quantize_dequantize(v, kv_cfg)
    if cache is not None:
        k = np.concatenate([cache[0], k], axis=1)
        v = np.concatenate([cache[1], v], axis=1)
    S = k.shape[1]
    qh = q.reshape(B, T, config.heads, hd).transpose(0, 2, 1, 3)
    kh = k.reshape(B, S, config.heads, hd).transpose(0, 2, 1, 3)
    vh = v.reshape(B, S, config.heads, hd).transpose(0, 2, 1, 3)
    scores = qh @ kh.transpose(0, 1, 3, 2) / np.sqrt(hd)
    # Causal mask: query t may see keys up to (S - T + t).
    offset = S - T
    mask = np.tril(np.ones((T, S), dtype=bool), k=offset)
    scores = np.where(mask[None, None], scores, -1e30)
    attn = _softmax(scores, axis=-1) @ vh
    out = attn.transpose(0, 2, 1, 3).reshape(B, T, H)
    return out @ lw.wo.T, (k, v)


def layer_forward(
    config: TinyLMConfig,
    lw: "LayerWeights",
    x: np.ndarray,
    cache: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    capture: Optional[Dict[str, List[np.ndarray]]] = None,
) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
    """One pre-LN decoder layer; returns (output, new KV pair)."""
    h = _layer_norm(x, lw.ln1_g, lw.ln1_b)
    if capture is not None:
        flat = h.reshape(-1, h.shape[-1])
        for name in ("wq", "wk", "wv"):
            capture[name].append(flat)
    attn, new_cache = attention_forward(config, lw, h, cache)
    x = x + attn
    h = _layer_norm(x, lw.ln2_g, lw.ln2_b)
    if capture is not None:
        capture["w1"].append(h.reshape(-1, h.shape[-1]))
    mid = _gelu(h @ lw.w1.T)
    if capture is not None:
        capture["w2"].append(mid.reshape(-1, mid.shape[-1]))
    return x + mid @ lw.w2.T, new_cache


class TinyLM:
    """A runnable, quantizable decoder-only language model."""

    def __init__(self, config: TinyLMConfig):
        self.config = config
        rng = np.random.default_rng(config.seed)
        c = config
        std = 0.08
        res_std = std / np.sqrt(2.0 * c.layers)
        self.embed = rng.standard_normal((c.vocab, c.hidden)).astype(np.float64) * std
        self.pos_embed = (
            rng.standard_normal((c.max_seq, c.hidden)).astype(np.float64) * std
        )
        self.layers: List[LayerWeights] = []
        for _ in range(c.layers):
            self.layers.append(
                LayerWeights(
                    ln1_g=np.ones(c.hidden),
                    ln1_b=np.zeros(c.hidden),
                    wq=rng.standard_normal((c.hidden, c.hidden)) * std,
                    wk=rng.standard_normal((c.hidden, c.hidden)) * std,
                    wv=rng.standard_normal((c.hidden, c.hidden)) * std,
                    wo=rng.standard_normal((c.hidden, c.hidden)) * res_std,
                    ln2_g=np.ones(c.hidden),
                    ln2_b=np.zeros(c.hidden),
                    w1=rng.standard_normal((c.ffn, c.hidden)) * std,
                    w2=rng.standard_normal((c.hidden, c.ffn)) * res_std,
                )
            )
        self.ln_f_g = np.ones(c.hidden)
        self.ln_f_b = np.zeros(c.hidden)
        # LM head tied to the embedding.

    # ------------------------------------------------------------------
    # Forward passes
    # ------------------------------------------------------------------

    def _layer(
        self,
        lw: LayerWeights,
        x: np.ndarray,
        cache: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        capture: Optional[Dict[str, List[np.ndarray]]] = None,
    ) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
        return layer_forward(self.config, lw, x, cache, capture)

    def embed_tokens(self, tokens: np.ndarray, start_pos: int = 0) -> np.ndarray:
        """Token + position embedding for (B, T) int tokens."""
        tokens = np.asarray(tokens)
        B, T = tokens.shape
        if start_pos + T > self.config.max_seq:
            raise ValueError(
                f"sequence length {start_pos + T} exceeds max_seq "
                f"{self.config.max_seq}"
            )
        return self.embed[tokens] + self.pos_embed[start_pos : start_pos + T]

    def lm_head(self, hidden: np.ndarray) -> np.ndarray:
        """Final norm + tied logit projection."""
        h = _layer_norm(hidden, self.ln_f_g, self.ln_f_b)
        return h @ self.embed.T

    def logits(self, tokens: np.ndarray) -> np.ndarray:
        """Teacher-forced logits (B, T, V)."""
        x = self.embed_tokens(tokens)
        for lw in self.layers:
            x, _ = self._layer(lw, x)
        return self.lm_head(x)

    def nll(self, tokens: np.ndarray) -> float:
        """Mean next-token negative log-likelihood over (B, T) tokens."""
        tokens = np.asarray(tokens)
        logits = self.logits(tokens[:, :-1])
        logp = logits - np.log(
            np.exp(logits - logits.max(axis=-1, keepdims=True)).sum(
                axis=-1, keepdims=True
            )
        ) - logits.max(axis=-1, keepdims=True)
        targets = tokens[:, 1:]
        picked = np.take_along_axis(logp, targets[..., None], axis=-1)
        return float(-picked.mean())

    def perplexity(self, tokens: np.ndarray) -> float:
        """``exp(mean NLL)`` — the quality metric of the paper."""
        return float(np.exp(self.nll(tokens)))

    # ------------------------------------------------------------------
    # Generation (KV-cached) — used by the runtime engine
    # ------------------------------------------------------------------

    def prefill(self, tokens: np.ndarray) -> Tuple[np.ndarray, KVCache]:
        """Process a prompt; returns last-position logits and the KV cache."""
        x = self.embed_tokens(tokens)
        cache = KVCache(keys=[], values=[])
        for lw in self.layers:
            x, (k, v) = self._layer(lw, x)
            cache.keys.append(k)
            cache.values.append(v)
        return self.lm_head(x[:, -1:, :])[:, 0, :], cache

    def decode_step(
        self, tokens: np.ndarray, cache: KVCache
    ) -> Tuple[np.ndarray, KVCache]:
        """One autoregressive step for (B,) tokens given the cache."""
        tokens = np.asarray(tokens).reshape(-1, 1)
        x = self.embed_tokens(tokens, start_pos=cache.length)
        for i, lw in enumerate(self.layers):
            x, (k, v) = self._layer(lw, x, cache=(cache.keys[i], cache.values[i]))
            cache.keys[i] = k
            cache.values[i] = v
        return self.lm_head(x[:, -1:, :])[:, 0, :], cache

    def sample(
        self,
        batch: int,
        length: int,
        temperature: float = 0.8,
        seed: int = 0,
        prompt: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Autoregressively sample (batch, length) token sequences."""
        rng = np.random.default_rng(seed)
        if prompt is None:
            prompt = rng.integers(0, self.config.vocab, size=(batch, 1))
        tokens = np.asarray(prompt)
        logits, cache = self.prefill(tokens)
        out = [tokens]
        while sum(t.shape[1] for t in out) < length:
            p = _softmax(logits / max(temperature, 1e-3), axis=-1)
            cum = np.cumsum(p, axis=-1)
            u = rng.random((p.shape[0], 1))
            nxt = (cum < u).sum(axis=-1).clip(0, self.config.vocab - 1)
            out.append(nxt[:, None])
            logits, cache = self.decode_step(nxt, cache)
        return np.concatenate(out, axis=1)[:, :length]

    # ------------------------------------------------------------------
    # Calibration & quantization
    # ------------------------------------------------------------------

    def capture_layer_inputs(
        self, tokens: np.ndarray, max_samples: int = 512, seed: int = 0
    ) -> List[Dict[str, np.ndarray]]:
        """Per-layer, per-operator calibration inputs (in_dim x samples)."""
        x = self.embed_tokens(tokens)
        captures: List[Dict[str, np.ndarray]] = []
        rng = np.random.default_rng(seed)
        for lw in self.layers:
            cap: Dict[str, List[np.ndarray]] = {k: [] for k in LINEAR_OPS}
            x, _ = self._layer(lw, x, capture=cap)
            layer_inputs: Dict[str, np.ndarray] = {}
            for name in LINEAR_OPS:
                if name == "wo":
                    continue  # attention-internal input, skip capture
                mats = cap[name]
                if not mats:
                    continue
                m = np.concatenate(mats, axis=0)
                if m.shape[0] > max_samples:
                    idx = rng.choice(m.shape[0], size=max_samples, replace=False)
                    m = m[idx]
                layer_inputs[name] = m.T  # (in_dim, samples)
            captures.append(layer_inputs)
        return captures

    def layer_operator_stats(
        self, tokens: np.ndarray
    ) -> List[List[OperatorStats]]:
        """Measured :class:`OperatorStats` per layer for the indicator."""
        captures = self.capture_layer_inputs(tokens)
        out: List[List[OperatorStats]] = []
        for lw, cap in zip(self.layers, captures):
            ops = []
            for name in LINEAR_OPS:
                if name not in cap:
                    continue
                ops.append(operator_stats_from_arrays(lw.linear(name), cap[name]))
            out.append(ops)
        return out

    def quantized(
        self,
        bits_per_layer: Sequence[int],
        method: str = "rtn",
        calib_tokens: Optional[np.ndarray] = None,
        group_size: int = 32,
    ) -> "TinyLM":
        """A copy with each layer's linear weights quantized to its bitwidth.

        ``method`` is ``"rtn"`` (round-to-nearest fake quant) or ``"gptq"``
        (requires ``calib_tokens``).  16-bit layers are left untouched.
        """
        if len(bits_per_layer) != self.config.layers:
            raise ValueError("need one bitwidth per layer")
        if method not in ("rtn", "gptq"):
            raise ValueError(f"unknown method {method!r}")
        captures = None
        if method == "gptq":
            if calib_tokens is None:
                raise ValueError("gptq requires calib_tokens")
            captures = self.capture_layer_inputs(calib_tokens)
        clone = TinyLM.__new__(TinyLM)
        clone.config = self.config
        clone.embed = self.embed
        clone.pos_embed = self.pos_embed
        clone.ln_f_g = self.ln_f_g
        clone.ln_f_b = self.ln_f_b
        clone.layers = []
        for i, lw in enumerate(self.layers):
            bits = int(bits_per_layer[i])
            if bits >= 16:
                clone.layers.append(lw)
                continue
            new = lw.copy()
            cfg = QuantConfig(bits=bits, granularity="group", group_size=group_size)
            for name in LINEAR_OPS:
                w = lw.linear(name)
                if method == "gptq" and captures is not None and name in captures[i]:
                    res = gptq_quantize(w, captures[i][name], cfg)
                    setattr(new, name, res.quantized.dequantize())
                else:
                    setattr(new, name, quantize_dequantize(w, cfg))
            clone.layers.append(new)
        return clone

    def with_kv_bits(self, kv_bits: int) -> "TinyLM":
        """A view of this model whose KV cache stores at ``kv_bits``.

        Weights are shared; only the cache write path changes.
        """
        clone = TinyLM.__new__(TinyLM)
        clone.config = replace(self.config, kv_bits=kv_bits)
        clone.embed = self.embed
        clone.pos_embed = self.pos_embed
        clone.ln_f_g = self.ln_f_g
        clone.ln_f_b = self.ln_f_b
        clone.layers = self.layers
        return clone
