"""Fig. 9: end-to-end throughput on heterogeneous clusters (vLLM backend).

Clusters 2-7 of Table III serving instruction models sized to each
cluster, on the CNN/DailyMail summarization and LooGLE long-context
workloads, comparing Uniform / Het / SplitQuant.  SplitQuant is quality-
constrained to at least the Uniform baseline (Sec. VI-C), so gains are
pure efficiency.  The paper reports a 37% average improvement over the
Uniform baseline on this backend.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..hardware.cluster import table_iii_cluster
from ..models.architectures import get_model
from ..workloads.distributions import sample_dataset
from ..workloads.spec import BatchWorkload
from .common import compare_policies, feasible_batch
from .harness import ExperimentResult

#: Model sized to each cluster's aggregate memory (paper pairs similarly).
CLUSTER_MODELS: Dict[int, str] = {
    2: "qwen2.5-32b",
    3: "qwen2.5-14b",
    4: "llama-3.3-70b",
    5: "qwen2.5-14b",
    6: "qwen2.5-7b",
    7: "qwen2.5-32b",
}


def build_workload(
    dataset: str, model_name: str, cluster_idx: int, seed: int = 0
) -> BatchWorkload:
    """A representative padded batch of the dataset for one cluster."""
    spec = get_model(model_name)
    cluster = table_iii_cluster(cluster_idx)
    sample = sample_dataset(dataset, 2048, seed)
    if dataset == "loogle":
        # Long-context: prompts clipped to the model context and an
        # engine-tractable bound; admission limited by the KV budget.
        prompt = int(
            min(np.percentile(sample.prompt_lens, 50),
                spec.max_position_embeddings - 512, 16_384)
        )
        output = max(int(sample.output_lens.mean()), 8)
    else:
        keep = sample.prompt_lens + sample.output_lens <= spec.max_position_embeddings
        prompt = int(np.percentile(sample.prompt_lens[keep], 95))
        output = int(sample.output_lens[keep].mean())
    batch = feasible_batch(spec, cluster, prompt, output, max_batch=256)
    return BatchWorkload(batch=batch, prompt_len=prompt, output_len=output)


def run(
    clusters: Sequence[int] = (2, 3, 4, 5, 6, 7),
    datasets: Sequence[str] = ("cnn_dailymail", "loogle"),
    seed: int = 0,
) -> ExperimentResult:
    rows = []
    speedups = []
    for idx in clusters:
        cluster = table_iii_cluster(idx)
        model_name = CLUSTER_MODELS[idx]
        spec = get_model(model_name)
        for dataset in datasets:
            wl = build_workload(dataset, model_name, idx, seed)
            cmp = compare_policies(spec, cluster, wl)
            sp = cmp.speedup_vs_uniform
            if np.isfinite(sp) and sp > 0:
                speedups.append(sp)
            rows.append(
                [
                    f"cluster-{idx}",
                    model_name,
                    dataset,
                    wl.describe(),
                    cmp.uniform_tput,
                    cmp.het_tput,
                    cmp.splitquant_tput,
                    sp if np.isfinite(sp) else float("nan"),
                ]
            )
    mean_speedup = float(np.mean(speedups)) if speedups else 0.0
    return ExperimentResult(
        name="fig09",
        title="Heterogeneous serving throughput, vLLM-style backend",
        headers=["cluster", "model", "dataset", "workload", "uniform_tps",
                 "het_tps", "splitquant_tps", "speedup_vs_uniform"],
        rows=rows,
        summary={"mean_speedup_vs_uniform": mean_speedup},
        notes="Paper: ~1.37x average over Uniform; gains on both workloads.",
    )
