"""Bench: regenerate Table VI (grouping and heuristic vs solver time)."""

from repro.experiments import tab06_grouping_heuristic


def test_tab06_grouping_heuristic(experiment):
    res = experiment(tab06_grouping_heuristic.run)
    # Heuristic throughput within a few percent of the best strategy.
    for key, gap in res.summary.items():
        assert gap > 0.9, key
    # group=1 costs more solve time than group=2 in every case.
    by_case = {}
    for model, cluster, strategy, tput, overhead in res.rows:
        by_case.setdefault((model, cluster), {})[strategy] = overhead
    for case, overheads in by_case.items():
        assert overheads["group=1"] > overheads["group=2"], case
