"""End-to-end pipeline serving simulation (the "runtime" of Fig. 6).

Simulates offline serving of one padded batch through a pipeline plan as a
discrete-event system: chunked prefill micro-batches flow through the FIFO
stage servers with asynchronous point-to-point communication, then decode
proceeds token by token with the autoregressive feedback loop from the
last stage's LM head back to the first stage's embedding.  Phases are
sequential, matching the paper's offline latency model (objective (4)).

Per-stage memory is checked against the paper's memory cost model before
anything runs; infeasible plans raise
:class:`~repro.simgpu.memory.OutOfMemoryError` just as they would on
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..costmodel.memory import MemoryCostModel
from ..hardware.cluster import ClusterSpec, Device
from ..models.architectures import ModelSpec
from ..models import layers as L
from ..obs import DEFAULT_FRACTION_BUCKETS, metrics, trace
from ..plan import ExecutionPlan
from ..simgpu.memory import OutOfMemoryError
from ..workloads.spec import BatchWorkload, VariableBatchWorkload
from .events import EventLoop, FaultEvent
from .stage import TimingSource
from .topology import (
    FEEDBACK_BYTES_PER_REQ as _FEEDBACK_BYTES_PER_REQ,
    PipelineTopology,
    microbatch_sizes,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.faults import FaultPlan

#: Accepted ``sim_backend`` values for the simulator entry points.
SIM_BACKENDS = ("event", "fast", "auto")


def _check_backend(sim_backend: str) -> None:
    if sim_backend not in SIM_BACKENDS:
        raise ValueError(
            f"unknown sim_backend {sim_backend!r} (expected one of "
            f"{SIM_BACKENDS})"
        )


@dataclass(frozen=True)
class PipelineSimResult:
    """Outcome of simulating one batch through a plan."""

    makespan_s: float
    prefill_span_s: float
    decode_span_s: float
    total_tokens: int
    stage_busy_s: Tuple[float, ...]
    stage_memory_bytes: Tuple[int, ...]
    events_processed: int
    #: Which simulation backend produced this result (``"event"`` or
    #: ``"fast"``).  Provenance only: excluded from equality so the
    #: differential tests can assert fast == event directly.
    sim_backend: str = field(default="event", compare=False)
    #: Why the fast path was declined when a dispatcher (``auto`` or the
    #: batched evaluator) dropped this run to the event engine; ``None``
    #: when no fallback happened.  Provenance only, like ``sim_backend``.
    backend_reason: Optional[str] = field(default=None, compare=False)
    #: Joules drawn by the plan's GPUs over the run
    #: (:func:`repro.costmodel.energy.plan_energy`); ``None`` when the
    #: result predates energy accounting.  Participates in equality, so
    #: the event/fast/batched differential tests pin it bit-identical.
    energy_j: Optional[float] = None
    #: Dollars for the run: rental + electricity
    #: (:func:`repro.costmodel.energy.plan_cost`).
    cost_usd: Optional[float] = None

    @property
    def throughput_tokens_s(self) -> float:
        """Output token throughput — the paper's headline metric."""
        if self.makespan_s <= 0:
            return 0.0
        return self.total_tokens / self.makespan_s

    @property
    def stage_utilization(self) -> Tuple[float, ...]:
        if self.makespan_s <= 0:
            return tuple(0.0 for _ in self.stage_busy_s)
        return tuple(min(b / self.makespan_s, 1.0) for b in self.stage_busy_s)

    @property
    def bubble_fraction(self) -> float:
        """Mean idle fraction across stages — pipeline imbalance measure."""
        util = self.stage_utilization
        return 1.0 - float(np.mean(util)) if util else 0.0

    @property
    def duration_s(self) -> float:
        """Simulated wall-clock (the Summary-protocol duration)."""
        return self.makespan_s

    @property
    def joules_per_token(self) -> float:
        """Energy efficiency headline (J per output token)."""
        if self.energy_j is None or self.total_tokens <= 0:
            return 0.0
        return self.energy_j / self.total_tokens

    @property
    def usd_per_mtoken(self) -> float:
        """Dollar efficiency headline ($ per million output tokens)."""
        if self.cost_usd is None or self.total_tokens <= 0:
            return 0.0
        return self.cost_usd / (self.total_tokens / 1e6)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict via :mod:`repro.serialization` (round-trip)."""
        from ..serialization import sim_result_to_dict

        return sim_result_to_dict(self)


def attach_energy(
    result: PipelineSimResult,
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: BatchWorkload,
) -> PipelineSimResult:
    """Stamp joules and dollars onto a finished simulation result.

    A pure post-pass over fields every backend already agrees on
    bit-for-bit (makespan, phase spans, per-stage busy times), so the
    stamped totals are bit-identical across event, fast and batched
    engines by construction.
    """
    from ..costmodel.energy import plan_cost, plan_energy

    energy = plan_energy(
        plan,
        cluster,
        spec,
        workload,
        result.makespan_s,
        result.prefill_span_s,
        result.decode_span_s,
        result.stage_busy_s,
    )
    cost = plan_cost(plan, cluster, result.makespan_s, energy)
    return replace(result, energy_j=energy, cost_usd=cost)


# Historical location of the micro-batch splitter; the shared
# implementation (with edge-case validation) lives in
# :func:`repro.pipeline.topology.microbatch_sizes`.
_microbatch_sizes = microbatch_sizes


def check_plan_memory(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: BatchWorkload,
) -> Tuple[int, ...]:
    """Per-stage predicted peak bytes; raises OutOfMemoryError on misfit."""
    mem_model = MemoryCostModel(
        spec=spec,
        batch=workload.batch,
        context=workload.context_len,
        bit_kv=plan.bit_kv,
        # Peak prefill activations cover one actual chunk, not the
        # configured cap (keep consistent with the planner's capacity).
        chunk_tokens=workload.chunk_len,
    )
    by_id: Dict[int, Device] = {d.device_id: d for d in cluster.devices}
    usages: List[int] = []
    for j, st in enumerate(plan.stages):
        capacity = sum(by_id[d].gpu.usable_mem_bytes for d in st.device_ids)
        need = mem_model.stage_bytes(
            st.layer_bits,
            microbatch=plan.prefill_microbatch,
            with_embeddings=(j == 0),
        )
        if j == len(plan.stages) - 1 and j != 0:
            # LM head weights live with the last stage when it differs
            # from the first (master postprocessing placement).
            need += spec.lm_head_elements * L.FP16_BYTES
        if need > capacity:
            raise OutOfMemoryError(
                f"stage{j}({st.gpu_name})", need, capacity
            )
        usages.append(need)
    return tuple(usages)


def simulate_plan(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: BatchWorkload,
    timing: Optional[TimingSource] = None,
    check_memory: bool = True,
    sim_backend: str = "auto",
) -> PipelineSimResult:
    """Simulate serving ``workload`` under ``plan`` on ``cluster``.

    ``sim_backend`` selects the engine: ``"event"`` runs the
    discrete-event oracle, ``"fast"`` the closed-form steady-state
    recurrence (:mod:`repro.pipeline.fastsim`), and ``"auto"`` (default)
    dispatches to the fast path whenever the run is eligible — which for
    uniform fault-free batches is always.  The two backends produce
    bit-equal results; :attr:`PipelineSimResult.sim_backend` records
    which one ran.
    """
    _check_backend(sim_backend)
    with trace.span(
        "sim.run",
        stages=plan.num_stages,
        batch=workload.batch,
        output_len=workload.output_len,
    ) as sp:
        from .fastsim import _fast_simulate_plan, fast_eligibility

        reason = fast_eligibility(plan, workload)
        use_fast = sim_backend == "fast" or (
            sim_backend == "auto" and reason is None
        )
        if use_fast:
            result = _fast_simulate_plan(
                plan, cluster, spec, workload, timing, check_memory
            )
        else:
            result = _simulate_plan(
                plan, cluster, spec, workload, timing, check_memory
            )
            if sim_backend == "auto" and reason is not None:
                result = replace(result, backend_reason=reason)
        result = attach_energy(result, plan, cluster, spec, workload)
        sp.set(events=result.events_processed)
        if trace.enabled:
            metrics.counter("sim.runs").inc()
            metrics.counter(f"sim.backend_{result.sim_backend}").inc()
            metrics.counter("sim.events").inc(result.events_processed)
            metrics.histogram(
                "sim.bubble_fraction", DEFAULT_FRACTION_BUCKETS
            ).observe(result.bubble_fraction)
        return result


def _simulate_plan(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: BatchWorkload,
    timing: Optional[TimingSource],
    check_memory: bool,
) -> PipelineSimResult:
    topo = PipelineTopology.build(plan, cluster, spec, timing)
    n_stages = topo.num_stages

    stage_mem = (
        check_plan_memory(plan, cluster, spec, workload)
        if check_memory
        else tuple(0 for _ in plan.stages)
    )

    loop = EventLoop()
    servers = topo.make_servers(loop)

    # ------------------------------------------------------------------
    # Prefill phase: mu_pre micro-batches x kappa chunks, chained FIFO.
    # ------------------------------------------------------------------
    pre_sizes = microbatch_sizes(workload.batch, plan.prefill_microbatch)
    chunk = workload.chunk_len
    pre_time: Dict[Tuple[int, int], float] = {}
    for size in set(pre_sizes):
        for j in range(n_stages):
            pre_time[(j, size)] = topo.prefill_time(j, size, chunk)
    pre_comm: Dict[Tuple[int, int], float] = {}
    for size in set(pre_sizes):
        for j in range(n_stages - 1):
            pre_comm[(j, size)] = topo.prefill_comm(j, size, chunk)

    prefill_done_at: List[float] = [0.0] * len(pre_sizes)
    pending = {"prefill": len(pre_sizes) * workload.kappa}
    # Hot-loop hoists: bind the per-stage submit methods and the last
    # stage index once so each event pays local loads, not repeated
    # attribute/global lookups (behavior is bit-identical).
    submit_at = [s.submit for s in servers]
    last_stage = n_stages - 1

    def submit_prefill(j: int, m: int, c: int, size: int, ready: float) -> None:
        def done(finish: float) -> None:
            if j < last_stage:
                arrival = finish + pre_comm[(j, size)]
                submit_prefill(j + 1, m, c, size, arrival)
            else:
                prefill_done_at[m] = max(prefill_done_at[m], finish)
                pending["prefill"] -= 1

        submit_at[j](
            pre_time[(j, size)], done, not_before=ready, label=f"P{m}.{c}"
        )

    with trace.span(
        "sim.prefill", microbatches=len(pre_sizes), chunks=workload.kappa
    ) as sp:
        for m, size in enumerate(pre_sizes):
            for c in range(workload.kappa):
                submit_prefill(0, m, c, size, 0.0)
        loop.run()
        sp.set(events=loop.processed)
    if pending["prefill"] != 0:
        raise RuntimeError("prefill simulation did not drain")
    prefill_span = max(prefill_done_at) if prefill_done_at else 0.0

    # ------------------------------------------------------------------
    # Decode phase: token-by-token with autoregressive feedback.
    # ------------------------------------------------------------------
    n_out = workload.output_len
    dec_sizes = microbatch_sizes(workload.batch, plan.decode_microbatch)
    decode_steps = n_out - 1
    decode_span = 0.0
    if decode_steps > 0:
        # Hoist the per-event ``float(ndarray[i])`` conversion: plain
        # Python lists carry the exact same float64 values.
        dec_series: Dict[Tuple[int, int], List[float]] = {}
        for size in set(dec_sizes):
            for j in range(n_stages):
                dec_series[(j, size)] = topo.decode_series(
                    j, size, workload.prompt_len, n_out
                )
        dec_comm: Dict[Tuple[int, int], float] = {}
        for size in set(dec_sizes):
            for j in range(n_stages - 1):
                dec_comm[(j, size)] = topo.decode_comm(j, size)
        fb_delay = {
            size: topo.feedback_delay(size) for size in set(dec_sizes)
        }

        last_token_done = [0.0] * len(dec_sizes)
        remaining = {"jobs": len(dec_sizes)}

        def submit_decode(j: int, m: int, t: int, size: int, ready: float) -> None:
            dur = dec_series[(j, size)][t - 1]

            def done(finish: float) -> None:
                if j < last_stage:
                    submit_decode(j + 1, m, t, size, finish + dec_comm[(j, size)])
                elif t < decode_steps:
                    submit_decode(0, m, t + 1, size, finish + fb_delay[size])
                else:
                    last_token_done[m] = finish
                    remaining["jobs"] -= 1

            submit_at[j](dur, done, not_before=ready, label=f"D{m}.{t}")

        events_before = loop.processed
        with trace.span(
            "sim.decode", microbatches=len(dec_sizes), steps=decode_steps
        ) as sp:
            for m, size in enumerate(dec_sizes):
                submit_decode(0, m, 1, size, prefill_span)
            loop.run()
            sp.set(events=loop.processed - events_before)
        if remaining["jobs"] != 0:
            raise RuntimeError("decode simulation did not drain")
        decode_span = max(last_token_done) - prefill_span

    makespan = prefill_span + decode_span
    total_tokens = workload.batch * n_out
    return PipelineSimResult(
        makespan_s=makespan,
        prefill_span_s=prefill_span,
        decode_span_s=decode_span,
        total_tokens=total_tokens,
        stage_busy_s=tuple(s.busy_time for s in servers),
        stage_memory_bytes=stage_mem,
        events_processed=loop.processed,
    )


@dataclass(frozen=True)
class DegradedSimResult:
    """Outcome of simulating a batch through a plan *with faults*.

    Mirrors the fault-tolerant runtime's recovery semantics in discrete
    event time so planned-vs-executed degradation can be cross-validated:
    each fault splits the run into segments (the partial attempt lost to
    the fault, then the replayed attempt on the degraded plan), and the
    makespan is the sum of segment spans plus detection overheads.
    """

    makespan_s: float
    total_tokens: int
    #: Recovery attempts (replan or rebuild), as the runtime counts them.
    replans: int
    #: Plan per attempt, initial plan first — comparable 1:1 against
    #: :attr:`repro.runtime.engine.PipelineEngine.plan_history`.
    plans: Tuple[ExecutionPlan, ...]
    #: Per-segment simulation results (lost attempts, then the final one).
    segments: Tuple[PipelineSimResult, ...]
    fault_events: Tuple[FaultEvent, ...]

    @property
    def throughput_tokens_s(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.total_tokens / self.makespan_s

    @property
    def degradation_overhead_s(self) -> float:
        """Extra wall-clock versus running the final plan fault-free."""
        return self.makespan_s - self.segments[-1].makespan_s

    @property
    def duration_s(self) -> float:
        """Simulated wall-clock (the Summary-protocol duration)."""
        return self.makespan_s

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict via :mod:`repro.serialization` (round-trip)."""
        from ..serialization import degraded_result_to_dict

        return degraded_result_to_dict(self)


def _surviving_devices(
    plan: ExecutionPlan, dead: Tuple[int, ...]
) -> Tuple[int, ...]:
    """Device ids of ``plan`` minus ``dead`` — identical expression to the
    runtime engine's, so plan sequences line up bit-for-bit."""
    dead_set = set(dead)
    return tuple(
        d
        for st in plan.stages
        for d in st.device_ids
        if d not in dead_set
    )


def simulate_degraded(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: BatchWorkload,
    fault_plan: "FaultPlan",
    timing: Optional[TimingSource] = None,
    check_memory: bool = True,
    detection_overhead_s: float = 0.0,
    replan: Optional[
        Callable[[ExecutionPlan, Tuple[int, ...]], ExecutionPlan]
    ] = None,
) -> DegradedSimResult:
    """Simulate serving under an injected :class:`FaultPlan`.

    The mirror of :meth:`repro.runtime.engine.PipelineEngine.generate`'s
    recovery loop: ``kill`` faults cost the partial attempt up to the last
    committed token, a detection overhead, then a full replayed attempt on
    the degraded plan (the runtime re-prefills and replays the committed
    prefix, so the recovered attempt is a from-scratch run); ``drop``
    faults rebuild the same plan; ``slow`` faults are absorbed as a pure
    delay.  Raises :class:`repro.plan.InfeasibleError` (via ``replan``)
    when no degraded plan fits — exactly when the runtime would.

    The partial span of a fault hitting prefill is approximated by a full
    prefill pass (conservative: the wavefront is mostly through by the
    time a late stage dies).
    """
    if replan is None:
        from ..core.planner import degrade_execution_plan_internal

        def replan(
            cur: ExecutionPlan, surviving: Tuple[int, ...]
        ) -> ExecutionPlan:
            return degrade_execution_plan_internal(
                cur, surviving, cluster, spec, workload
            )

    with trace.span(
        "sim.degraded", faults=len(tuple(fault_plan.in_order()))
    ) as sp:
        result = _simulate_degraded(
            plan, cluster, spec, workload, fault_plan, timing,
            check_memory, detection_overhead_s, replan,
        )
        sp.set(replans=result.replans)
        if trace.enabled:
            metrics.counter("sim.degraded_runs").inc()
            metrics.counter("sim.replans").inc(result.replans)
        return result


def _simulate_degraded(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: BatchWorkload,
    fault_plan: "FaultPlan",
    timing: Optional[TimingSource],
    check_memory: bool,
    detection_overhead_s: float,
    replan: Callable[[ExecutionPlan, Tuple[int, ...]], ExecutionPlan],
) -> DegradedSimResult:
    current = plan
    plans: List[ExecutionPlan] = [plan]
    segments: List[PipelineSimResult] = []
    events: List[FaultEvent] = []
    t_acc = 0.0
    replans = 0
    for fs in fault_plan.in_order():
        if fs.kind == "slow":
            # Absorbed by recv retry/backoff: a pure serial delay.
            t_acc += fs.delay_s
            events.append(
                FaultEvent(
                    time_s=t_acc,
                    kind="slow",
                    stage=fs.stage,
                    phase=fs.phase,
                    step=fs.step,
                    action="absorb",
                    detail=f"delay {fs.delay_s:.3g}s",
                )
            )
            with trace.span(
                "sim.fault", kind="slow", stage=fs.stage,
                phase=fs.phase, step=fs.step, action="absorb",
            ):
                pass  # marker: the delay is pure simulated time
            continue
        if fs.stage >= current.num_stages:
            continue  # the degraded pipeline no longer has this stage
        if fs.phase == "decode" and fs.step >= workload.output_len:
            continue  # beyond the generation horizon: never fires
        with trace.span(
            "sim.fault", kind=fs.kind, stage=fs.stage,
            phase=fs.phase, step=fs.step,
            action="replan" if fs.kind == "kill" else "rebuild",
        ):
            committed = 0 if fs.phase == "prefill" else fs.step
            lost_wl = replace(workload, output_len=max(committed, 1))
            lost = simulate_plan(
                current, cluster, spec, lost_wl,
                timing=timing, check_memory=False,
            )
            segments.append(lost)
            t_acc += lost.makespan_s + detection_overhead_s
            if fs.kind == "kill":
                dead = current.stages[fs.stage].device_ids
                events.append(
                    FaultEvent(
                        time_s=t_acc,
                        kind="kill",
                        stage=fs.stage,
                        phase=fs.phase,
                        step=fs.step,
                        action="replan",
                        detail=f"devices {dead} removed",
                    )
                )
                current = replan(current, _surviving_devices(current, dead))
            else:  # drop: same devices, fresh pipeline + replay
                events.append(
                    FaultEvent(
                        time_s=t_acc,
                        kind="drop",
                        stage=fs.stage,
                        phase=fs.phase,
                        step=fs.step,
                        action="rebuild",
                    )
                )
            replans += 1
            plans.append(current)

    final = simulate_plan(
        current, cluster, spec, workload,
        timing=timing, check_memory=check_memory,
    )
    segments.append(final)
    return DegradedSimResult(
        makespan_s=t_acc + final.makespan_s,
        total_tokens=workload.total_output_tokens,
        replans=replans,
        plans=tuple(plans),
        segments=tuple(segments),
        fault_events=tuple(events),
    )


def simulate_plan_variable(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: VariableBatchWorkload,
    timing: Optional[TimingSource] = None,
    check_memory: bool = True,
    sim_backend: str = "auto",
) -> PipelineSimResult:
    """Simulate a batch whose requests generate different token counts.

    Requests retire as they finish, so decode micro-batches shrink over
    time and short requests stop paying for long ones — the
    variable-output-length scenario the paper's latency model only
    sketches (Sec. IV-C).  Prefill is identical to the uniform case.

    ``sim_backend="auto"`` uses the closed-form fast path for the
    fixed-size portion of the problem (all output lengths equal, where
    retirement never splits a decode round) and falls back to the
    event-driven engine otherwise; ``"fast"`` raises on a genuinely
    variable batch.
    """
    _check_backend(sim_backend)
    with trace.span(
        "sim.run_variable",
        stages=plan.num_stages,
        batch=workload.batch,
        max_output=workload.max_output,
    ) as sp:
        from .fastsim import (
            _fast_simulate_plan_variable,
            fast_eligibility_variable,
        )

        reason = fast_eligibility_variable(workload)
        use_fast = sim_backend == "fast" or (
            sim_backend == "auto" and reason is None
        )
        if use_fast:
            result = _fast_simulate_plan_variable(
                plan, cluster, spec, workload, timing, check_memory
            )
        else:
            result = _simulate_plan_variable(
                plan, cluster, spec, workload, timing, check_memory
            )
            if sim_backend == "auto" and reason is not None:
                result = replace(result, backend_reason=reason)
        # Energy references the worst-case uniform view, mirroring the
        # engines' own memory/prefill treatment of variable batches.
        result = attach_energy(
            result,
            plan,
            cluster,
            spec,
            BatchWorkload(
                batch=workload.batch,
                prompt_len=workload.prompt_len,
                output_len=workload.max_output,
                chunk_tokens=workload.chunk_tokens,
            ),
        )
        sp.set(events=result.events_processed)
        if trace.enabled:
            metrics.counter("sim.runs_variable").inc()
            metrics.counter(f"sim.backend_{result.sim_backend}").inc()
            metrics.counter("sim.events").inc(result.events_processed)
            metrics.histogram(
                "sim.bubble_fraction", DEFAULT_FRACTION_BUCKETS
            ).observe(result.bubble_fraction)
        return result


def _simulate_plan_variable(
    plan: ExecutionPlan,
    cluster: ClusterSpec,
    spec: ModelSpec,
    workload: VariableBatchWorkload,
    timing: Optional[TimingSource],
    check_memory: bool,
) -> PipelineSimResult:
    topo = PipelineTopology.build(plan, cluster, spec, timing)
    n_stages = topo.num_stages

    # Memory and prefill follow the worst-case uniform view (KV reserved
    # for the longest request, as the paper's memory model does).
    uniform = BatchWorkload(
        batch=workload.batch,
        prompt_len=workload.prompt_len,
        output_len=workload.max_output,
        chunk_tokens=workload.chunk_tokens,
    )
    stage_mem = (
        check_plan_memory(plan, cluster, spec, uniform)
        if check_memory
        else tuple(0 for _ in plan.stages)
    )

    loop = EventLoop()
    servers = topo.make_servers(loop)

    # ---- prefill (same wavefront as the uniform simulator) -------------
    pre_sizes = microbatch_sizes(workload.batch, plan.prefill_microbatch)
    chunk = uniform.chunk_len
    pre_time = {
        (j, size): topo.prefill_time(j, size, chunk)
        for size in set(pre_sizes)
        for j in range(n_stages)
    }
    pre_comm = {
        (j, size): topo.prefill_comm(j, size, chunk)
        for size in set(pre_sizes)
        for j in range(n_stages - 1)
    }
    pending = {"prefill": len(pre_sizes) * uniform.kappa}
    prefill_done = [0.0]
    # Hot-loop hoists (bit-identical): bound submit methods, last stage.
    submit_at = [s.submit for s in servers]
    last_stage = n_stages - 1

    def submit_prefill(j: int, size: int, ready: float) -> None:
        def done(finish: float) -> None:
            if j < last_stage:
                submit_prefill(j + 1, size, finish + pre_comm[(j, size)])
            else:
                prefill_done[0] = max(prefill_done[0], finish)
                pending["prefill"] -= 1

        submit_at[j](pre_time[(j, size)], done, not_before=ready)

    for size in pre_sizes:
        for _ in range(uniform.kappa):
            submit_prefill(0, size, 0.0)
    loop.run()
    prefill_span = prefill_done[0]

    # ---- decode with retiring requests ----------------------------------
    xi = plan.decode_microbatch
    slices = [
        list(workload.output_lens[s : s + xi])
        for s in range(0, workload.batch, xi)
    ]
    # Lazily built per-(stage, size) step series and link times, hoisted
    # to Python floats once instead of per-event array indexing/transfer
    # recomputation (values bit-identical: both are pure functions).
    series_cache: Dict[Tuple[int, int], List[float]] = {}
    comm_cache: Dict[Tuple[int, int], float] = {}

    def step_time(j: int, size: int, t: int) -> float:
        key = (j, size)
        series = series_cache.get(key)
        if series is None:
            series = series_cache[key] = topo.decode_series(
                j, size, workload.prompt_len, workload.max_output
            )
        return series[t - 1]

    def comm_time(j: int, size: int) -> float:
        key = (j, size)
        t = comm_cache.get(key)
        if t is None:
            t = comm_cache[key] = topo.decode_comm(j, size)
        return t

    def active_at(m: int, t: int) -> int:
        return sum(1 for n in slices[m] if n > t)

    last_done = [prefill_span] * len(slices)
    remaining = {"jobs": 0}

    def submit_decode(j: int, m: int, t: int, size: int, ready: float) -> None:
        def done(finish: float) -> None:
            if j < last_stage:
                submit_decode(j + 1, m, t, size, finish + comm_time(j, size))
                return
            nxt = active_at(m, t + 1)
            if nxt > 0:
                fb = topo.feedback_delay(nxt)
                submit_decode(0, m, t + 1, nxt, finish + fb)
            else:
                last_done[m] = finish
                remaining["jobs"] -= 1

        submit_at[j](step_time(j, size, t), done, not_before=ready)

    for m in range(len(slices)):
        size = active_at(m, 1)
        if size > 0:
            remaining["jobs"] += 1
            submit_decode(0, m, 1, size, prefill_span)
    loop.run()
    if remaining["jobs"] != 0:
        raise RuntimeError("variable decode simulation did not drain")
    decode_span = max(last_done) - prefill_span

    return PipelineSimResult(
        makespan_s=prefill_span + decode_span,
        prefill_span_s=prefill_span,
        decode_span_s=decode_span,
        total_tokens=workload.total_output_tokens,
        stage_busy_s=tuple(s.busy_time for s in servers),
        stage_memory_bytes=stage_mem,
        events_processed=loop.processed,
    )
