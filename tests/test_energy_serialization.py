"""Serialization round-trips for the energy/cost result fields.

The convention under test: ``energy_j``/``cost_usd`` are emitted
*only when set* on pipeline/online/fleet result dicts, dicts written
before the fields existed still load (fields default to ``None``)
without any deprecation noise, and the planner provenance fields
(``objective``/``budget``/``predicted_*``) round-trip while staying
``compare=False`` — provenance never changes plan equality.
"""

from __future__ import annotations

import dataclasses
import json
import warnings

import pytest

from repro.plan import uniform_plan
from repro.serialization import (
    fleet_result_from_dict,
    fleet_result_to_dict,
    online_result_from_dict,
    online_result_to_dict,
    planner_result_from_dict,
    planner_result_to_dict,
    sim_result_from_dict,
    sim_result_to_dict,
)
from repro.workloads import BatchWorkload, poisson_trace


def groups_of(cluster):
    return [((d.device_id,), d.gpu.name) for d in cluster.devices]


def _stable(to_dict, from_dict, obj):
    """to_dict is a fixed point of from_dict(to_dict(.)) and JSON-safe."""
    d = to_dict(obj)
    json.loads(json.dumps(d))
    assert to_dict(from_dict(d)) == d
    return d


def _legacy_load(from_dict, d, *fields):
    """Load a pre-energy dict (keys stripped) — no warnings allowed."""
    legacy = {k: v for k, v in d.items() if k not in fields}
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        return from_dict(legacy)


@pytest.fixture(scope="module")
def pipeline_sim(cluster5, opt13b):
    from repro.pipeline import simulate_plan

    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(cluster5), 8, 8, 4
    )
    wl = BatchWorkload(batch=8, prompt_len=256, output_len=16)
    return simulate_plan(plan, cluster5, opt13b, wl, check_memory=False)


def test_pipeline_sim_energy_round_trip(pipeline_sim):
    d = _stable(sim_result_to_dict, sim_result_from_dict, pipeline_sim)
    assert d["energy_j"] > 0.0
    assert d["cost_usd"] > 0.0
    back = sim_result_from_dict(d)
    assert back.energy_j == d["energy_j"]
    assert back.cost_usd == d["cost_usd"]


def test_pipeline_sim_legacy_dict_loads(pipeline_sim):
    d = sim_result_to_dict(pipeline_sim)
    back = _legacy_load(sim_result_from_dict, d, "energy_j", "cost_usd")
    assert back.energy_j is None
    assert back.cost_usd is None
    # Unset energy reads as zero efficiency, never a crash...
    assert back.joules_per_token == 0.0
    assert back.usd_per_mtoken == 0.0
    # ...and the only-when-set convention keeps legacy dicts stable:
    # re-serializing the legacy load must not invent the keys.
    d2 = sim_result_to_dict(back)
    assert "energy_j" not in d2
    assert "cost_usd" not in d2


def test_online_energy_round_trip(cluster5, opt13b):
    from repro.pipeline import OnlineConfig, simulate_online

    plan = uniform_plan(
        opt13b.name, opt13b.num_layers, groups_of(cluster5), 8, 4, 4
    )
    trace = poisson_trace(rate_per_s=3.0, duration_s=8.0, seed=7,
                          max_prompt_len=128, max_output_len=8)
    res = simulate_online(
        plan, cluster5, opt13b, trace, config=OnlineConfig(chunk_tokens=256)
    )
    d = _stable(online_result_to_dict, online_result_from_dict, res)
    assert d["energy_j"] > 0.0
    assert d["cost_usd"] > 0.0
    back = _legacy_load(online_result_from_dict, d, "energy_j", "cost_usd")
    assert back.energy_j is None
    assert back.cost_usd is None
    d2 = online_result_to_dict(back)
    assert "energy_j" not in d2 and "cost_usd" not in d2


def test_fleet_energy_round_trip():
    from repro.fleet import FleetScheduler, make_job_queue, simulate_schedule

    jobs = make_job_queue(n_jobs=2, seed=1, models=("opt-1.3b",))
    sched = FleetScheduler(
        {"V100-32G": 2, "T4-16G": 2}, allocator="greedy"
    )
    sim = simulate_schedule(sched.schedule(jobs),
                            price_book=sched.price_book)
    d = _stable(fleet_result_to_dict, fleet_result_from_dict, sim)
    assert d["energy_j"] > 0.0
    assert d["cost_usd"] > 0.0
    back = _legacy_load(fleet_result_from_dict, d, "energy_j", "cost_usd")
    assert back.energy_j is None
    assert back.cost_usd is None


def test_planner_provenance_round_trip(opt13b, small_cluster,
                                       cost_model_13b, small_workload):
    from repro.core import PlannerConfig, SplitQuantPlanner

    cfg = PlannerConfig(group_size=5, max_orderings=2,
                        microbatch_candidates=(4,), time_limit_s=10.0)
    planner = SplitQuantPlanner(
        opt13b, small_cluster, cfg, cost_model=cost_model_13b
    )
    res = planner.plan(small_workload, objective="energy")
    assert res is not None
    d = _stable(planner_result_to_dict, planner_result_from_dict, res)
    assert d["objective"] == "energy"
    assert d["predicted_energy_j"] is not None
    assert d["predicted_cost_usd"] is not None
    back = planner_result_from_dict(d)
    assert back.objective == "energy"
    # Trace floats are rounded on write, so compare to the dict value.
    assert back.predicted_energy_j == d["predicted_energy_j"]
    assert back.predicted_energy_j == pytest.approx(res.predicted_energy_j)
    # Provenance is compare=False: two results differing only in it are
    # still equal, so persisted planner caches stay hit-compatible.
    scrubbed = dataclasses.replace(
        back, objective="throughput", budget=None,
        predicted_energy_j=None, predicted_cost_usd=None,
    )
    assert scrubbed == back
    # Pre-energy planner dicts (no provenance keys) still load.
    legacy = _legacy_load(
        planner_result_from_dict, d,
        "objective", "budget", "predicted_energy_j", "predicted_cost_usd",
    )
    assert legacy.objective == "throughput"
    assert legacy.budget is None
    assert legacy.plan == res.plan
