"""Synthetic production-fleet statistics (paper Fig. 1).

Fig. 1 motivates the work with two observations from a production cluster:
(a) high-calibre GPUs (A100) are a small fraction of the fleet, with most
capacity in older inference parts (T4, V100, P100), and (b) monthly
utilization is far higher on A100s than on the long tail.

We reproduce those statistics with a seeded generator: a fleet of GPUs is
drawn from the published share distribution and per-GPU monthly effective
hours are sampled from per-type beta distributions whose means match the
utilization gap the paper shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

#: Share of each GPU type in the fleet (sums to 1), shaped after Fig. 1(a):
#: a thin slice of A100s and a long tail of inference parts.
FLEET_SHARES: Dict[str, float] = {
    "A100-40G": 0.08,
    "V100-32G": 0.27,
    "T4-16G": 0.46,
    "P100-12G": 0.19,
}

#: Mean monthly utilization per type (effective GPU-hours / available
#: GPU-hours), shaped after Fig. 1(b): A100s run hot, the tail idles.
UTILIZATION_MEANS: Dict[str, float] = {
    "A100-40G": 0.87,
    "V100-32G": 0.48,
    "T4-16G": 0.33,
    "P100-12G": 0.21,
}


@dataclass(frozen=True)
class FleetStats:
    """Aggregated statistics over a synthetic fleet sample."""

    counts: Dict[str, int]
    utilization: Dict[str, float]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def shares(self) -> Dict[str, float]:
        total = self.total
        return {k: v / total for k, v in self.counts.items()}

    def idle_gpu_hours(self, hours_per_month: float = 720.0) -> Dict[str, float]:
        """Unused GPU-hours per type per month — the untapped capacity."""
        return {
            k: self.counts[k] * hours_per_month * (1.0 - self.utilization[k])
            for k in self.counts
        }


def sample_fleet(n_gpus: int = 10_000, seed: int = 0) -> FleetStats:
    """Draw a synthetic fleet and its monthly utilization.

    Utilization per GPU is Beta-distributed with the per-type mean above and
    concentration 20, giving realistic within-type spread.
    """
    if n_gpus <= 0:
        raise ValueError("n_gpus must be positive")
    rng = np.random.default_rng(seed)
    types = list(FLEET_SHARES)
    probs = np.array([FLEET_SHARES[t] for t in types])
    probs = probs / probs.sum()
    draws = rng.choice(len(types), size=n_gpus, p=probs)
    counts = {t: int((draws == i).sum()) for i, t in enumerate(types)}

    utilization: Dict[str, float] = {}
    conc = 20.0
    for i, t in enumerate(types):
        n = counts[t]
        if n == 0:
            utilization[t] = 0.0
            continue
        mean = UTILIZATION_MEANS[t]
        a, b = mean * conc, (1.0 - mean) * conc
        utilization[t] = float(rng.beta(a, b, size=n).mean())
    return FleetStats(counts=counts, utilization=utilization)


def monthly_utilization_series(
    months: int = 12, n_gpus: int = 10_000, seed: int = 0
) -> Dict[str, List[float]]:
    """Per-type monthly utilization over a year (Fig. 1(b) series)."""
    if months <= 0:
        raise ValueError("months must be positive")
    out: Dict[str, List[float]] = {t: [] for t in FLEET_SHARES}
    for m in range(months):
        stats = sample_fleet(n_gpus=n_gpus, seed=seed + m)
        for t in out:
            out[t].append(stats.utilization[t])
    return out
