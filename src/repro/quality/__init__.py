"""Model quality substrate: TinyLM, corpora, perplexity, analytic model."""

from .datasets import (
    CORPUS_SPECS,
    EvalCorpora,
    build_calibration_tokens,
    build_eval_corpora,
    zipfian_stream,
)
from .perplexity import (
    QualityReport,
    evaluate_assignment,
    evaluate_ppl,
    next_token_accuracy,
)
from .quality_model import (
    ACC_KAPPA,
    BASE_ACC,
    BASE_PPL,
    DATASET_MULTIPLIERS,
    PPL_KAPPA,
    AnalyticQualityModel,
)
from .tinylm import (
    LINEAR_OPS,
    KVCache,
    LayerWeights,
    TinyLM,
    TinyLMConfig,
    attention_forward,
    layer_forward,
)

__all__ = [
    "CORPUS_SPECS",
    "EvalCorpora",
    "build_calibration_tokens",
    "build_eval_corpora",
    "zipfian_stream",
    "QualityReport",
    "evaluate_assignment",
    "evaluate_ppl",
    "next_token_accuracy",
    "ACC_KAPPA",
    "BASE_ACC",
    "BASE_PPL",
    "DATASET_MULTIPLIERS",
    "PPL_KAPPA",
    "AnalyticQualityModel",
    "LINEAR_OPS",
    "KVCache",
    "LayerWeights",
    "TinyLM",
    "TinyLMConfig",
    "attention_forward",
    "layer_forward",
]
