"""Comparison policies: Uniform, Het, and adabits (Sec. VI-A / VI-H)."""

from .adabits import plan_adabits_baseline
from .het import (
    plan_het_baseline,
    proportional_split,
    repair_partition_for_memory,
)
from .uniform import (
    BaselineResult,
    default_microbatch,
    default_stage_groups,
    plan_uniform_baseline,
)

__all__ = [
    "plan_adabits_baseline",
    "plan_het_baseline",
    "proportional_split",
    "repair_partition_for_memory",
    "BaselineResult",
    "default_microbatch",
    "default_stage_groups",
    "plan_uniform_baseline",
]
