"""Inter-stage communication channels for the threaded runtime.

Thin typed wrapper over ``queue.Queue``: activation messages flow forward
through the pipeline, a sentinel closes a channel, and receives time out
rather than deadlock silently when a worker dies.
"""

from __future__ import annotations

import queue
from dataclasses import dataclass, field
from typing import Any, Optional

_CLOSE = object()


class ChannelClosed(RuntimeError):
    """Receiving from a channel whose sender has shut down."""


@dataclass
class Channel:
    """A one-directional message pipe between pipeline participants."""

    name: str
    maxsize: int = 0
    _q: queue.Queue = field(init=False, repr=False)

    def __post_init__(self):
        self._q = queue.Queue(maxsize=self.maxsize)

    def send(self, msg: Any) -> None:
        self._q.put(msg)

    def recv(self, timeout: Optional[float] = 30.0) -> Any:
        try:
            msg = self._q.get(timeout=timeout)
        except queue.Empty:
            raise TimeoutError(
                f"channel {self.name!r}: no message within {timeout}s"
            ) from None
        if msg is _CLOSE:
            raise ChannelClosed(f"channel {self.name!r} closed")
        return msg

    def close(self) -> None:
        self._q.put(_CLOSE)

    @property
    def pending(self) -> int:
        return self._q.qsize()
