"""The scalable DP planning tier: routing, identity, and gap bounds."""

import numpy as np
import pytest

from repro.core import (
    PlannerConfig,
    SplitQuantPlanner,
    build_problem,
    scalable_orderings,
    segment_partition,
)
from repro.core.dp import flow_relaxed_span
from repro.costmodel.latency import LatencyCostModel
from repro.hardware import make_cluster
from repro.hardware.cluster import table_iii_cluster
from repro.models import get_model
from repro.quant.sensitivity import normalized_indicator_table
from repro.workloads import BatchWorkload

WL = BatchWorkload(batch=8, prompt_len=256, output_len=32)
FAST = PlannerConfig(
    use_heuristic=True, microbatch_candidates=(4, 8), verify_top_k=1
)


# ---------------------------------------------------------------------------
# Tier routing & provenance
# ---------------------------------------------------------------------------


def test_auto_routes_small_to_exact_and_large_to_dp():
    spec = get_model("opt-13b")
    small = SplitQuantPlanner(
        spec, make_cluster("s", [("V100-32G", 2)]), FAST
    )
    assert small.resolve_tier(None) == ("exact", "auto: 2 devices <= 8")
    big = SplitQuantPlanner(
        spec,
        make_cluster("b", [("V100-32G", 8), ("T4-16G", 4)]),
        FAST,
    )
    tier, reason = big.resolve_tier(None)
    assert tier == "dp" and "12 devices > 8" in reason
    assert big.resolve_tier("exact") == ("exact", "requested")
    with pytest.raises(ValueError, match="unknown planner tier"):
        big.resolve_tier("milp")


def test_config_tier_validation():
    with pytest.raises(ValueError, match="tier"):
        PlannerConfig(tier="fast")
    with pytest.raises(ValueError):
        PlannerConfig(auto_exact_max_devices=0)
    with pytest.raises(ValueError):
        PlannerConfig(dp_prefix_candidates=0)
    with pytest.raises(ValueError):
        PlannerConfig(dp_polish_iters=-1)


def test_result_provenance_fields():
    spec = get_model("opt-1.3b")
    planner = SplitQuantPlanner(
        spec, make_cluster("p", [("V100-32G", 2)]), FAST
    )
    exact = planner.plan(WL)
    assert exact.tier == "exact"
    assert exact.gap_bound is None
    assert exact.workload == WL
    dp = planner.plan(WL, tier="dp")
    assert dp.tier == "dp"
    assert dp.tier_reason == "requested"
    assert dp.gap_bound is not None and dp.gap_bound >= 1.0
    # Provenance fields never affect result equality (compare=False).
    import dataclasses

    restamped = dataclasses.replace(
        exact, tier="dp", tier_reason="x", gap_bound=2.0
    )
    assert restamped == exact


# ---------------------------------------------------------------------------
# DP vs exact: bit-identical where forced, bounded gap on the grid
# ---------------------------------------------------------------------------


def test_dp_exact_identity_forced_assignment():
    """K=1 bits, one deduplicated ordering, G == N: the assignment is
    forced, so DP and exact MILP must return bit-identical plans."""
    spec = get_model("opt-1.3b")
    cluster = make_cluster("forced", [("V100-32G", 2)])
    cfg = PlannerConfig(
        bit_choices=(4,),
        group_size=spec.num_layers // 2,
        use_heuristic=False,
        microbatch_candidates=(8,),
        tie_microbatches=True,
        verify_top_k=1,
        enable_tp=False,
    )
    planner = SplitQuantPlanner(spec, cluster, cfg)
    exact = planner.plan(WL, tier="exact")
    dp = planner.plan(WL, tier="dp")
    assert exact is not None and dp is not None
    assert dp.plan == exact.plan


@pytest.mark.parametrize("idx", [2, 3, 5, 9])
def test_dp_vs_exact_differential_grid(idx):
    """Across the fastsim grid the DP tier's throughput stays within a
    bounded gap of the exact tier (empirically it matches it)."""
    spec = get_model("opt-1.3b")
    planner = SplitQuantPlanner(spec, table_iii_cluster(idx), FAST)
    exact = planner.plan(WL, tier="exact")
    dp = planner.plan(WL, tier="dp")
    assert (exact is None) == (dp is None)
    if exact is None:
        return
    assert dp.throughput_tokens_s >= 0.7 * exact.throughput_tokens_s
    assert dp.gap_bound is not None
    assert 1.0 <= dp.gap_bound < 25.0
    assert dp.plan.num_layers == spec.num_layers


def test_dp_vs_milp_oracle_small_instance():
    spec = get_model("opt-13b")
    cfg = PlannerConfig(
        use_heuristic=False,
        microbatch_candidates=(4,),
        verify_top_k=1,
        group_size=4,
    )
    planner = SplitQuantPlanner(spec, table_iii_cluster(3), cfg)
    exact = planner.plan(WL, tier="exact")
    dp = planner.plan(WL, tier="dp")
    assert exact is not None and dp is not None
    assert dp.throughput_tokens_s >= 0.9 * exact.throughput_tokens_s


def test_dp_plans_cluster_exact_cannot_enumerate():
    """A 24-GPU mixed cluster: candidate_orderings would need to permute
    >= 6 node groups; the DP tier plans it in well under a minute."""
    spec = get_model("opt-13b")
    cluster = make_cluster(
        "big",
        [("A100-40G", 8), ("V100-32G", 8), ("T4-16G", 8)],
    )
    planner = SplitQuantPlanner(spec, cluster, FAST)
    result = planner.plan(WL)
    assert result is not None
    assert result.tier == "dp"
    assert result.plan.num_layers == spec.num_layers
    used = [d for st in result.plan.stages for d in st.device_ids]
    assert len(used) == len(set(used))


# ---------------------------------------------------------------------------
# Building blocks
# ---------------------------------------------------------------------------


def _small_problem(n_devices=3):
    spec = get_model("opt-1.3b")
    cluster = make_cluster("sp", [("V100-32G", n_devices)])
    ordering = scalable_orderings(cluster, enable_tp=False)[0]
    cm = LatencyCostModel(spec)
    cm.fit([cluster.devices[0].gpu], (3, 4, 8, 16))
    omega = normalized_indicator_table(spec, (3, 4, 8, 16))
    return build_problem(
        spec, cluster, ordering, WL, cm, omega, 4, 4, (3, 4, 8, 16),
        group_size=2,
    )


def test_segment_partition_contiguous_and_feasible():
    problem = _small_problem()
    stage = segment_partition(problem)
    assert stage is not None
    assert len(stage) == problem.n_groups
    # Contiguous, monotone, every stage non-empty.
    assert stage == sorted(stage)
    assert set(stage) == set(range(problem.n_stages))
    # Min-bits memory respected per stage.
    for j in range(problem.n_stages):
        mem = sum(
            problem.mem[g, 0] for g in range(problem.n_groups)
            if stage[g] == j
        )
        assert mem <= problem.capacity[j] + 1e-6


def test_segment_partition_infeasible_when_more_stages_than_groups():
    problem = _small_problem()
    # A fake problem with fewer groups than stages cannot be partitioned.
    import dataclasses

    shrunk = dataclasses.replace(
        problem,
        l_pre=problem.l_pre[:1],
        l_dec=problem.l_dec[:1],
        mem=problem.mem[:1],
        omega=problem.omega[:1],
        group_sizes=problem.group_sizes[:1],
    )
    assert segment_partition(shrunk) is None


def test_flow_relaxed_span_scales_with_rates():
    u = np.full(2, 1e-3)
    comm = np.zeros(1)
    fast = flow_relaxed_span(u, u, comm, comm, 24, 4, 2, 32)
    slow = flow_relaxed_span(2 * u, 2 * u, comm, comm, 24, 4, 2, 32)
    assert slow == pytest.approx(2 * fast)
    assert fast > 0


def test_scalable_orderings_cover_and_dedup():
    cluster = make_cluster(
        "so", [("A100-40G", 4), ("V100-32G", 2), ("T4-16G", 1)]
    )
    orderings = scalable_orderings(cluster, enable_tp=True)
    assert orderings
    all_ids = {d.device_id for d in cluster.devices}
    keys = set()
    for ordering in orderings:
        used = [d for sg in ordering for d in sg.device_ids]
        assert sorted(used) == sorted(all_ids)
        key = tuple(sg.key() for sg in ordering)
        assert key not in keys
        keys.add(key)
    # The cap is respected.
    assert len(scalable_orderings(cluster, max_orderings=2)) <= 2


def test_scalable_orderings_scale():
    """O(D log D): a 1000-GPU cluster enumerates in well under a second."""
    import time

    cluster = make_cluster(
        "huge",
        [("A100-40G", 400), ("V100-32G", 300), ("T4-16G", 300)],
    )
    t0 = time.perf_counter()
    orderings = scalable_orderings(cluster)
    assert orderings
    assert time.perf_counter() - t0 < 1.0
