"""Bench: regenerate Fig. 4 (PPL/accuracy across quantization schemes)."""

from repro.experiments import fig04_quant_quality


def test_fig04_quant_quality(experiment):
    res = experiment(fig04_quant_quality.run)
    s = res.summary
    for model in ("bloom-3b", "opt-1.3b"):
        assert s[f"{model}_int8_ppl"] < s[f"{model}_int4_ppl"]
        assert s[f"{model}_mixed4-8_ppl"] <= s[f"{model}_int4_ppl"]
        assert s[f"{model}_mixed3-4_ppl"] <= s[f"{model}_int3_ppl"]
    assert s["tinylm_int8_ppl"] < s["tinylm_int3_ppl"]
