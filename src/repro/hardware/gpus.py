"""GPU device specifications for the simulated heterogeneous testbed.

The paper evaluates on NVIDIA T4, P100, V100 and A100-40G GPUs.  We model
each device by the quantities that determine kernel performance in a
roofline sense plus the precision-support matrix the paper exploits:

* peak and *effective* compute throughput per precision (tensor cores make
  INT8 fast on T4/A100 but not on P100/V100),
* effective memory bandwidth (decode is memory-bound),
* memory capacity net of the CUDA context,
* a per-kernel launch overhead (dominates tiny decode kernels on old parts).

Effective numbers are calibrated so the simulator reproduces the ratios the
paper reports (e.g. Fig. 3: a P100 runs an OPT layer ~14.5x slower than a
V100 in prefill but only ~7.3x slower in decode; Sec. II-E: T4 INT8 is
comparable to FP16 thanks to tensor cores while V100 INT8 is
shape-dependent).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Tuple

GiB = 1024**3
#: Memory reserved by the CUDA context / framework on every device (bytes).
CUDA_CONTEXT_BYTES = int(1.2 * GiB)

#: Bitwidths a plan may assign to a layer.  FP16 == 16 means "not quantized".
SUPPORTED_BITS: Tuple[int, ...] = (3, 4, 8, 16)


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU model.

    Compute throughputs are *effective achievable* numbers in TFLOP/s (or
    integer TOP/s for ``int8_tops``), i.e. peak scaled by a realistic
    utilization factor, since the planner only ever observes end-to-end
    kernel times.
    """

    name: str
    mem_bytes: int
    #: Effective dense FP16 throughput (TFLOP/s) for large matmuls.
    fp16_tflops: float
    #: Effective FP32 throughput (TFLOP/s); used for non-tensor-core paths.
    fp32_tflops: float
    #: Effective INT8 throughput (TOP/s) when tensor cores / DP4A exist.
    int8_tops: float
    #: True when INT8 matmul runs on dedicated tensor cores (T4, A100).
    int8_tensor_cores: bool
    #: Effective memory bandwidth (GB/s) for large contiguous reads.
    mem_bw_gbps: float
    #: Effective bandwidth (GB/s) achieved by decode-phase GEMV-style
    #: kernels.  Older architectures coalesce these poorly and reach a much
    #: lower fraction of HBM peak than modern parts.
    mem_bw_decode_gbps: float
    #: Fixed overhead per kernel launch (seconds).
    kernel_overhead_s: float
    #: Relative cost multiplier for unpacking sub-byte weights (3/4-bit).
    dequant_penalty: float
    #: Intra-node interconnect ("nvlink" or "pcie").
    intra_node_link: str = "nvlink"
    #: Board power at idle (W): context held, no kernels in flight.
    idle_watts: float = 50.0
    #: Board power at full utilization (W): the TDP-class sustained draw.
    peak_watts: float = 250.0

    @property
    def usable_mem_bytes(self) -> int:
        """Memory available to model state after the CUDA context."""
        return self.mem_bytes - CUDA_CONTEXT_BYTES

    @property
    def flops_per_byte(self) -> float:
        """Compute-to-memory ratio (FLOP/Byte) at FP16 — the roofline knee."""
        return self.fp16_tflops * 1e12 / (self.mem_bw_gbps * 1e9)

    def compute_tflops(self, bits: int) -> float:
        """Effective matmul throughput when weights are stored at ``bits``.

        Weight-only quantization (3/4-bit GPTQ-style kernels) dequantizes to
        FP16 and runs FP16 tensor-core matmuls, so the *compute* rate is the
        FP16 rate; INT8 weight-activation kernels use the INT8 path when the
        device has fast INT8 support and otherwise fall back to a
        dequantize-to-FP16 path.
        """
        if bits == 16:
            return self.fp16_tflops
        if bits == 8:
            if self.int8_tensor_cores:
                return self.int8_tops  # TOP/s, same units once counted as ops
            # Slow path: simulated INT8 via FP16 units with conversion cost.
            return self.fp16_tflops * 0.85
        # 3/4-bit weight-only: FP16 compute after in-kernel dequantization.
        return self.fp16_tflops

    def replace(self, **kwargs) -> "GPUSpec":
        """Return a copy with selected fields overridden."""
        return dataclasses.replace(self, **kwargs)


def _make_registry() -> Dict[str, GPUSpec]:
    specs = [
        # Effective numbers; see module docstring for calibration targets.
        GPUSpec(
            name="A100-40G",
            mem_bytes=40 * GiB,
            fp16_tflops=200.0,
            fp32_tflops=18.0,
            int8_tops=380.0,
            int8_tensor_cores=True,
            mem_bw_gbps=1350.0,
            mem_bw_decode_gbps=900.0,
            kernel_overhead_s=4e-6,
            dequant_penalty=1.0,
            idle_watts=55.0,
            peak_watts=400.0,
        ),
        GPUSpec(
            name="V100-32G",
            mem_bytes=32 * GiB,
            fp16_tflops=80.0,
            fp32_tflops=14.0,
            int8_tops=0.0,
            int8_tensor_cores=False,
            mem_bw_gbps=750.0,
            mem_bw_decode_gbps=430.0,
            kernel_overhead_s=5e-6,
            dequant_penalty=1.3,
            idle_watts=35.0,
            peak_watts=300.0,
        ),
        GPUSpec(
            name="T4-16G",
            mem_bytes=16 * GiB,
            fp16_tflops=40.0,
            fp32_tflops=7.0,
            int8_tops=78.0,
            int8_tensor_cores=True,
            mem_bw_gbps=260.0,
            mem_bw_decode_gbps=180.0,
            kernel_overhead_s=6e-6,
            dequant_penalty=1.4,
            idle_watts=17.0,
            peak_watts=70.0,
        ),
        GPUSpec(
            name="P100-12G",
            mem_bytes=12 * GiB,
            # GP100 has no tensor cores and poor achievable FP16 GEMM
            # efficiency on transformer shapes; calibrated to Fig. 3's
            # ~14.5x prefill gap versus V100.
            fp16_tflops=5.5,
            fp32_tflops=8.0,
            int8_tops=0.0,
            int8_tensor_cores=False,
            mem_bw_gbps=430.0,
            # Decode GEMV kernels achieve a small fraction of HBM peak on
            # GP100; calibrated to Fig. 3's ~7.3x decode gap versus V100.
            mem_bw_decode_gbps=59.0,
            kernel_overhead_s=9e-6,
            dequant_penalty=1.8,
            idle_watts=30.0,
            peak_watts=250.0,
        ),
    ]
    return {s.name: s for s in specs}


GPU_REGISTRY: Dict[str, GPUSpec] = _make_registry()

#: Aliases accepted by :func:`get_gpu`.
_ALIASES = {
    "A100": "A100-40G",
    "V100": "V100-32G",
    "T4": "T4-16G",
    "P100": "P100-12G",
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by canonical name or short alias."""
    key = _ALIASES.get(name, name)
    try:
        return GPU_REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown GPU {name!r}; known: {sorted(GPU_REGISTRY)}"
        ) from None


def list_gpus() -> Tuple[str, ...]:
    """Canonical names of every registered GPU model."""
    return tuple(sorted(GPU_REGISTRY))
