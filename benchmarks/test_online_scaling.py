"""Bench: the epoch-vectorized online fast path vs the event engine.

Measures ``repro.pipeline.simulate_online`` with ``sim_backend="fast"``
against the discrete-event backend on two realistic arrival streams over
the 7-GPU Table-III cluster serving OPT-30B:

* **steady** — 150k requests/day for 60 s (the sustainable regime from
  the online fleet demo), and
* **overload** — 2M requests/day for 30 s with an 8 s TTFT SLO, so the
  admission controller admits a deep backlog and still sheds ~96% of
  the stream (the regime where the event engine burns the most events
  per completed request).

Both backends consume the same memoized duration tables
(:class:`~repro.pipeline.online.OnlineTables`); caches are cleared once
per backend and the best of ``ROUNDS`` is kept, so the first round pays
table construction and the best round measures the driver itself — the
same thing either backend costs inside a warm serving loop.

Results must be *bit-identical* (the fast path is a speed knob, not a
fidelity one) and the fast backend must clear a hard >= 5x wall-clock
floor on the overload stream.  Emits ``benchmarks/BENCH_online.json``.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

from repro.hardware import table_iii_cluster
from repro.models import get_model
from repro.pipeline import (
    OnlineConfig,
    clear_online_caches,
    clear_table_caches,
    simulate_online,
)
from repro.plan import uniform_plan
from repro.workloads import poisson_trace, rate_for_daily

OUT = Path(__file__).resolve().parent / "BENCH_online.json"

#: The fast backend must beat the event engine by at least this factor
#: on the overload stream (the steady-stream speedup is reported and
#: ratio-guarded against the committed baseline, but has no hard floor).
MIN_SPEEDUP = 5.0
ROUNDS = 5


def _bench_cases():
    """(name, plan, cluster, spec, trace, config) rows for both streams."""
    spec = get_model("opt-30b")
    cluster = table_iii_cluster(7)
    plan = uniform_plan(
        spec.name,
        spec.num_layers,
        [((d.device_id,), d.gpu.name) for d in cluster.devices],
        bits=4,
        prefill_microbatch=8,
        decode_microbatch=8,
    )
    steady = poisson_trace(
        rate_for_daily(150_000), duration_s=60.0, seed=42
    )
    overload = poisson_trace(
        rate_for_daily(2_000_000), duration_s=30.0, seed=7
    )
    return [
        (
            "steady",
            plan, cluster, spec, steady,
            OnlineConfig(chunk_tokens=512, admission="kv"),
        ),
        (
            "overload",
            plan, cluster, spec, overload,
            OnlineConfig(
                chunk_tokens=512, admission="kv", ttft_slo_s=8.0
            ),
        ),
    ]


def _measure_case(plan, cluster, spec, arrivals, config,
                  rounds: int = ROUNDS):
    """(event_wall_s, fast_wall_s, event_result, fast_result).

    Each backend starts from cold duration caches and keeps its best
    round, so the comparison is driver-vs-driver on warm tables.  A
    collection runs before each backend so a stale-heap GC pause from
    an earlier bench section cannot land inside a timed round.
    """

    def wall(backend):
        clear_online_caches()
        clear_table_caches()
        gc.collect()
        best, res = float("inf"), None
        for _ in range(rounds):
            t0 = time.perf_counter()
            res = simulate_online(
                plan, cluster, spec, arrivals,
                config=config, sim_backend=backend,
            )
            best = min(best, time.perf_counter() - t0)
        return best, res

    event_wall, event_res = wall("event")
    fast_wall, fast_res = wall("fast")
    return event_wall, fast_wall, event_res, fast_res


def _section(name, plan, cluster, spec, arrivals, config):
    event_wall, fast_wall, event_res, fast_res = _measure_case(
        plan, cluster, spec, arrivals, config
    )
    assert fast_res == event_res, f"{name}: fast backend diverged"
    speedup = event_wall / fast_wall
    if name == "overload":
        assert speedup >= MIN_SPEEDUP, (
            f"{name}: fast online backend only {speedup:.1f}x faster "
            f"(need >= {MIN_SPEEDUP}x): event {event_wall * 1e3:.1f}ms "
            f"vs fast {fast_wall * 1e3:.1f}ms for "
            f"{arrivals.n_requests} requests"
        )
    return {
        "requests": arrivals.n_requests,
        "completed": event_res.completed,
        "rejected": event_res.rejected,
        "events_per_run": event_res.events_processed,
        "event_wall_s": round(event_wall, 5),
        "fast_wall_s": round(fast_wall, 5),
        "speedup": round(speedup, 2),
        "results_identical": True,
    }


def test_online_scaling():
    record = {
        "bench": "online_scaling",
        "min_speedup": MIN_SPEEDUP,
    }
    for name, plan, cluster, spec, arrivals, config in _bench_cases():
        record[name] = _section(
            name, plan, cluster, spec, arrivals, config
        )
    OUT.write_text(json.dumps(record, indent=2) + "\n")
    print()
    print(json.dumps(record, indent=2))
