"""Bench: regenerate Fig. 5 (kernel latency vs precision and batch)."""

from repro.experiments import fig05_kernel_latency


def test_fig05_kernel_latency(experiment):
    res = experiment(fig05_kernel_latency.run)
    s = res.summary
    assert s["v100_prefill_fp16_over_4bit"] <= 1.0
    assert s["v100_decode_fp16_over_4bit"] > 1.5
    assert s["t4_prefill_fp16_over_int8"] > 1.2
    assert s["v100_prefill_fp16_over_int8"] < 1.0
