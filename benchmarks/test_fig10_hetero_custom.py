"""Bench: regenerate Fig. 10 (severe heterogeneity, custom backend)."""

from repro.experiments import fig10_hetero_custom


def test_fig10_hetero_custom(experiment):
    res = experiment(fig10_hetero_custom.run)
    # Paper: Uniform mostly OOM/weak; ~2.08x mean over Het.  The shape we
    # must hold: SplitQuant >= Het everywhere, substantial mean gain, and
    # gains grow with heterogeneity (cluster 6 is most constrained).
    assert res.summary["mean_speedup_vs_het"] > 1.3
    for row in res.rows:
        het, splitquant = row[3], row[4]
        assert splitquant >= het * 0.99
    by_cluster = {row[0]: row for row in res.rows}
    assert by_cluster["cluster-6"][5] > 1.5  # strongest gain where hardest
