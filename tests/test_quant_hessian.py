"""Tests for the Hessian-based sensitivity baseline."""

import numpy as np
import pytest

from repro.quant import (
    hessian_flops,
    hessian_indicator_table,
    hessian_sensitivity,
    top_eigenvalue,
    variance_indicator_flops,
)


def test_power_iteration_matches_numpy():
    rng = np.random.default_rng(0)
    a = rng.standard_normal((32, 32))
    h = a @ a.T
    lam = top_eigenvalue(h, iters=100)
    assert lam == pytest.approx(np.linalg.eigvalsh(h).max(), rel=1e-4)


def test_power_iteration_zero_matrix():
    assert top_eigenvalue(np.zeros((8, 8))) == 0.0


def test_power_iteration_rejects_nonsquare():
    with pytest.raises(ValueError):
        top_eigenvalue(np.zeros((4, 5)))


def test_sensitivity_monotone_in_bits():
    rng = np.random.default_rng(1)
    w = rng.standard_normal((16, 32)) * 0.1
    x = rng.standard_normal((32, 128))
    s3 = hessian_sensitivity(w, x, 3)
    s4 = hessian_sensitivity(w, x, 4)
    s8 = hessian_sensitivity(w, x, 8)
    assert s3 > s4 > s8 > 0


def test_indicator_table_fp16_zero():
    rng = np.random.default_rng(2)
    ws = [rng.standard_normal((8, 16)) for _ in range(3)]
    xs = [rng.standard_normal((16, 64)) for _ in range(3)]
    table = hessian_indicator_table(ws, xs, (3, 4, 8, 16))
    assert table.shape == (3, 4)
    assert np.all(table[:, 3] == 0)
    assert np.all(table[:, 0] > table[:, 1])


def test_hessian_vs_variance_cost_gap():
    """The complexity claim of Sec. IV-B: quadratic vs linear in D_X."""
    d_w, d_x, n = 9216, 9216, 262_144
    ratio = hessian_flops(d_w, d_x, n) / variance_indicator_flops(d_w, n)
    assert ratio > 1000


def test_hessian_correlates_with_weight_magnitude():
    rng = np.random.default_rng(3)
    x = rng.standard_normal((16, 128))
    small = hessian_sensitivity(rng.standard_normal((8, 16)) * 0.01, x, 4)
    large = hessian_sensitivity(rng.standard_normal((8, 16)) * 1.0, x, 4)
    assert large > small
