"""Online fleet mode: jobs arrive over time, the allocator reacts
incrementally.

Contrast with ``test_fleet.py``: the offline scheduler packs a known
queue globally; here placement happens one arrival at a time on the
*free* inventory only, running jobs are never re-packed, and blocked
jobs wait FIFO (with backfill) until a release frees their GPUs.
"""

from __future__ import annotations

import pytest

from repro.fleet import (
    JobArrival,
    OnlineFleetResult,
    OnlineFleetScheduler,
    make_job_arrivals,
    simulate_online_fleet,
)
from repro.fleet.jobs import FleetJob, make_job_queue
from repro.workloads import BatchWorkload

INVENTORY = {"T4-16G": 2, "V100-32G": 1}


def small_job(job_id: str, model: str = "opt-1.3b",
              num_batches: int = 2) -> FleetJob:
    return FleetJob(
        job_id=job_id,
        model=model,
        workload=BatchWorkload(batch=8, prompt_len=128, output_len=32),
        num_batches=num_batches,
        min_uniform_bits=4,
    )


def test_make_job_arrivals_seeded():
    a = make_job_arrivals(n_jobs=5, seed=3)
    b = make_job_arrivals(n_jobs=5, seed=3)
    assert a == b
    assert len(a) == 5
    assert a[0].arrival_s == 0.0  # fleet is never trivially idle
    times = [ja.arrival_s for ja in a]
    assert times == sorted(times)
    assert [ja.job for ja in a] == list(make_job_queue(n_jobs=5, seed=3))
    assert make_job_arrivals(n_jobs=5, seed=4) != a


def test_job_arrival_validation():
    with pytest.raises(ValueError):
        JobArrival(job=small_job("j0"), arrival_s=-1.0)
    with pytest.raises(ValueError):
        make_job_arrivals(n_jobs=2, mean_interarrival_s=0.0)
    with pytest.raises(ValueError):
        simulate_online_fleet(INVENTORY, [])
    dup = [(0.0, small_job("same")), (1.0, small_job("same"))]
    with pytest.raises(ValueError):
        simulate_online_fleet(INVENTORY, dup)


def test_online_fleet_accounting_and_determinism():
    arrivals = make_job_arrivals(n_jobs=4, seed=0,
                                 mean_interarrival_s=60.0)
    res = simulate_online_fleet(INVENTORY, arrivals)
    assert isinstance(res, OnlineFleetResult)
    assert len(res.jobs) + len(res.dropped) == len(arrivals)
    by_id = {r.job_id: r for r in res.jobs}
    for ja in arrivals:
        rec = by_id.get(ja.job.job_id)
        if rec is None:
            assert ja.job.job_id in res.dropped
            continue
        assert rec.arrival_s == ja.arrival_s
        assert rec.start_s >= rec.arrival_s
        assert rec.end_s > rec.start_s
        assert rec.wait_s == rec.start_s - rec.arrival_s
        assert rec.turnaround_s == rec.end_s - rec.arrival_s
    assert res.makespan_s == max(r.end_s for r in res.jobs)
    assert res.total_tokens == sum(r.total_tokens for r in res.jobs)
    assert res.throughput_tokens_s > 0
    # Bit-identical replay; pool_stats (cache warmth) is provenance-only
    # and excluded from equality.
    again = simulate_online_fleet(INVENTORY, arrivals)
    assert again == res
    d = res.to_dict()
    assert d["kind"] == "online_fleet"
    assert len(d["jobs"]) == len(res.jobs)
    assert "online fleet:" in res.describe()


def test_blocked_job_waits_for_release():
    """On a single-GPU inventory a second arrival must queue until the
    first job departs — the incremental-reaction contract."""
    inv = {"V100-32G": 1}
    arrivals = [
        (0.0, small_job("first", num_batches=20)),
        (1.0, small_job("second")),
    ]
    res = simulate_online_fleet(inv, arrivals)
    assert len(res.jobs) == 2
    first = next(r for r in res.jobs if r.job_id == "first")
    second = next(r for r in res.jobs if r.job_id == "second")
    assert first.wait_s == 0.0
    assert second.start_s == first.end_s  # backfilled at the release
    assert second.wait_s > 0.0


def test_infeasible_job_dropped_immediately():
    """A model no group of the inventory can hold is dropped, and later
    feasible arrivals are unaffected."""
    inv = {"T4-16G": 1}
    arrivals = [
        (0.0, small_job("tiny")),
        (1.0, small_job("huge", model="opt-66b")),
    ]
    res = simulate_online_fleet(inv, arrivals)
    assert res.dropped == ("huge",)
    assert [r.job_id for r in res.jobs] == ["tiny"]


def test_scheduler_free_ledger_roundtrip():
    sched = OnlineFleetScheduler(INVENTORY)
    status, assignment = sched.submit(small_job("j0"), now=0.0)
    assert status == "started" and assignment is not None
    used = dict(assignment.group.counts)
    for g, n in used.items():
        assert sched.free[g] == sched.inventory[g] - n
    sched._release(assignment.group)
    assert sched.free == sched.inventory


def test_indexed_drain_matches_legacy_rescan():
    """The admissibility index is a speed knob, not a policy change:
    every placement, wait, and drop — and the replay's event count —
    must match the legacy per-job planner rescan exactly."""
    arrivals = make_job_arrivals(n_jobs=6, seed=1,
                                 mean_interarrival_s=30.0)
    indexed = simulate_online_fleet(INVENTORY, arrivals)
    legacy = simulate_online_fleet(INVENTORY, arrivals,
                                   index_queue=False)
    assert indexed == legacy
    assert indexed.jobs == legacy.jobs
    assert indexed.dropped == legacy.dropped
    assert indexed.events_processed == legacy.events_processed
    assert indexed.events_processed > 0


def test_queue_contention_indexed_vs_legacy():
    """Single-GPU contention forces real queue drains through the
    indexed path; outcomes stay identical to the rescan."""
    inv = {"V100-32G": 1}
    arrivals = [
        (0.0, small_job("a", num_batches=20)),
        (1.0, small_job("b")),
        (2.0, small_job("c")),
        (3.0, small_job("huge", model="opt-66b")),
    ]
    indexed = simulate_online_fleet(inv, arrivals)
    legacy = simulate_online_fleet(inv, arrivals, index_queue=False)
    assert indexed == legacy
    assert indexed.events_processed == legacy.events_processed
    assert indexed.dropped == ("huge",)
    # b and c both waited in the queue, so drains actually exercised
    # the index (not just the submit fast path).
    waits = {r.job_id: r.wait_s for r in indexed.jobs}
    assert waits["b"] > 0.0 and waits["c"] > 0.0


def test_parallel_prewarm_invariance():
    """Parallelism only changes *when* pairs are evaluated (prewarmed
    across workers vs lazily in the replay), never what is decided —
    the in-arrival-order reduction is bit-identical."""
    arrivals = make_job_arrivals(n_jobs=5, seed=2,
                                 mean_interarrival_s=45.0)
    serial = simulate_online_fleet(INVENTORY, arrivals, parallelism=1)
    warm = simulate_online_fleet(INVENTORY, arrivals, parallelism=1,
                                 prewarm=True)
    par = simulate_online_fleet(INVENTORY, arrivals, parallelism=2)
    assert warm == serial
    assert par == serial
    assert warm.events_processed == serial.events_processed
    assert par.events_processed == serial.events_processed
