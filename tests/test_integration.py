"""Cross-module integration tests: plan -> simulate -> compare policies."""

import dataclasses

import pytest

from repro.baselines import plan_uniform_baseline
from repro.core import PlannerConfig, SplitQuantPlanner
from repro.experiments.common import compare_policies, feasible_batch
from repro.hardware import make_cluster, table_iii_cluster
from repro.models import get_model
from repro.pipeline import simulate_plan
from repro.quality import AnalyticQualityModel
from repro.workloads import BatchWorkload

BITS = (3, 4, 8, 16)


@pytest.fixture(scope="module")
def setting(cost_model_13b, opt13b, small_cluster):
    wl = BatchWorkload(batch=16, prompt_len=512, output_len=48)
    return opt13b, small_cluster, wl, cost_model_13b


def test_splitquant_not_worse_than_uniform(setting):
    """The headline invariant: Uniform's plan is in SplitQuant's space."""
    spec, cluster, wl, cm = setting
    uni = plan_uniform_baseline(spec, cluster, wl, BITS)
    uni_tput = simulate_plan(uni.plan, cluster, spec, wl).throughput_tokens_s
    cfg = PlannerConfig(
        group_size=5, max_orderings=4,
        microbatch_candidates=(4, 8, 16), time_limit_s=15.0,
    )
    planner = SplitQuantPlanner(spec, cluster, cfg, cost_model=cm)
    budget = planner.uniform_quality(uni.bits)
    planner = SplitQuantPlanner(
        spec, cluster, dataclasses.replace(cfg, quality_budget=budget),
        cost_model=cm,
    )
    res = planner.plan(wl)
    sq_tput = simulate_plan(res.plan, cluster, spec, wl).throughput_tokens_s
    assert sq_tput >= uni_tput * 0.97


def test_splitquant_quality_at_least_uniform(setting):
    """Sec. VI-C: throughput gains without quality loss."""
    spec, cluster, wl, cm = setting
    uni = plan_uniform_baseline(spec, cluster, wl, BITS)
    cfg = PlannerConfig(
        group_size=5, max_orderings=4,
        microbatch_candidates=(4, 8, 16), time_limit_s=15.0,
    )
    planner = SplitQuantPlanner(spec, cluster, cfg, cost_model=cm)
    budget = planner.uniform_quality(uni.bits)
    planner = SplitQuantPlanner(
        spec, cluster, dataclasses.replace(cfg, quality_budget=budget),
        cost_model=cm,
    )
    res = planner.plan(wl)
    qm = AnalyticQualityModel.for_model(spec, BITS)
    ppl_sq = qm.avg_ppl(list(res.plan.bits_per_layer))
    ppl_uni = qm.uniform_ppl(uni.bits)
    # Hidden-truth noise allows tiny inversions; bound it.
    assert ppl_sq <= ppl_uni * 1.02


def test_compare_policies_end_to_end(setting):
    spec, cluster, wl, _ = setting
    cmp = compare_policies(spec, cluster, wl)
    assert cmp.splitquant_tput > 0
    assert cmp.uniform_tput > 0
    assert cmp.speedup_vs_uniform >= 0.97


def test_severe_heterogeneity_gain():
    """A P100+V100 mix should show a clear SplitQuant win."""
    cluster = make_cluster(
        "p100mix", [("P100-12G", 2), ("V100-32G", 1)], "eth-100g"
    )
    spec = get_model("opt-13b")
    wl = BatchWorkload(batch=16, prompt_len=512, output_len=48)
    cmp = compare_policies(spec, cluster, wl)
    assert cmp.splitquant_tput > 0
    if cmp.het_tput > 0:
        assert cmp.speedup_vs_het >= 1.0


def test_feasible_batch_long_context_smaller():
    cluster = table_iii_cluster(5)
    spec = get_model("qwen2.5-14b")
    short = feasible_batch(spec, cluster, 1024, 64)
    long = feasible_batch(spec, cluster, 16384, 64)
    assert long < short
    assert long >= 1


def test_plan_executes_on_tinylm(tiny_model, rng):
    """A planner-shaped plan drives the real runtime end-to-end."""
    import numpy as np

    from repro.plan import ExecutionPlan, StagePlan
    from repro.runtime import PipelineEngine, reference_generate

    plan = ExecutionPlan(
        model_name="tiny",
        stages=(
            StagePlan((0,), "T4-16G", 0, (8, 4)),
            StagePlan((1,), "V100-32G", 2, (16, 16)),
        ),
        prefill_microbatch=2,
        decode_microbatch=2,
    )
    prompts = rng.integers(0, tiny_model.config.vocab, size=(4, 10))
    with PipelineEngine(tiny_model, plan) as eng:
        out = eng.generate(prompts, n_tokens=5)
    ref = reference_generate(tiny_model.quantized([8, 4, 16, 16]), prompts, 5)
    assert np.array_equal(out.tokens, ref)
