"""Bench: design-choice ablations (beyond the paper's Fig. 12)."""

from repro.experiments import ablations


def test_ablations(experiment):
    res = experiment(ablations.run)
    s = res.summary
    assert s["phase_aware_gain"] >= 1.0  # phase awareness never hurts
    assert s["free_microbatch_gain"] >= 1.0  # eta != xi never hurts
    assert s["verify_gain"] >= 0.99  # dry-run verification is a safety net
    assert s["kv_planning_gain"] >= 1.0  # KV planning never hurts
    assert s["mean_estimator_ok"] == 1.0
