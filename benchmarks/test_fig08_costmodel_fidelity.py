"""Bench: regenerate Fig. 8 (cost model fidelity)."""

from repro.experiments import fig08_costmodel_fidelity


def test_fig08_costmodel_fidelity(experiment):
    res = experiment(fig08_costmodel_fidelity.run)
    assert res.summary["memory_mean_err"] < 0.01  # "almost negligible"
    assert res.summary["latency_mean_err"] < 0.06  # "< 6%"
