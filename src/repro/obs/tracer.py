"""Span-based tracing: the execution side of the planner's feedback loop.

The paper's planner is driven end-to-end by *observed* latency/memory
samples; this module lets the reproduction observe itself.  A
:class:`Tracer` records **spans** — named, attributed, nested intervals
with wall and CPU time — from the planner (candidate search, HiGHS
solves), the discrete-event simulators and the threaded runtime
(per-stage step spans, checkpoint commits, the fault
detection→replan→replay timeline).

Design constraints (see DESIGN.md "Observability"):

* **Zero dependencies** — stdlib only, numpy never touches a span.
* **No-op fast path** — when tracing is disabled (the default) a hook
  costs one attribute check plus a kwargs pack; genuinely hot loops
  guard with ``if trace.enabled`` so the disabled cost is a single
  attribute load.  ``benchmarks/test_obs_overhead.py`` asserts < 2%
  total overhead on the Table-VI planner configuration.
* **Deterministic modulo timestamps** — span names, attributes, status
  and parentage depend only on program logic, never on timing, so a
  :func:`normalize_trace` of a run (timestamps stripped, records
  canonically sorted) is byte-stable and golden-testable.
* **Thread-correct** — nesting is tracked per thread; spans opened on
  worker or pool threads simply root their own stacks.

JSONL export: one object per *closed* span, with fields ``i`` (close
order), ``parent`` (span index or null), ``name``, ``thread``,
``depth``, ``t0_s`` (epoch start), ``wall_s``, ``cpu_s`` (thread CPU
time), ``status`` (``"ok"`` or ``"error:<ExcType>"``) and ``attrs``.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

__all__ = [
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "normalize_trace",
    "parse_trace",
]


def _json_safe(value: Any) -> Any:
    """Coerce an attribute value into something JSON-serializable."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    # numpy scalars and friends expose item(); fall back to repr.
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _json_safe(item())
        except Exception:  # pragma: no cover - defensive
            pass
    return repr(value)


class _NoopSpan:
    """Shared do-nothing span returned on the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Span:
    """One live span.  Use as a context manager; closes exactly once."""

    __slots__ = (
        "tracer",
        "name",
        "attrs",
        "index",
        "parent_index",
        "depth",
        "thread",
        "t0_s",
        "status",
        "wall_s",
        "cpu_s",
        "_t0_wall",
        "_t0_cpu",
        "_closed",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.index: Optional[int] = None
        self.parent_index: Optional[int] = None
        self.depth = 0
        self.thread = ""
        self.t0_s = 0.0
        self.status = "ok"
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._t0_wall = 0.0
        self._t0_cpu = 0.0
        self._closed = False

    def set(self, **attrs: Any) -> None:
        """Attach attributes after the span opened."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self.tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = f"error:{exc_type.__name__}"
        self.tracer._close(self)
        return False


class Tracer:
    """Records spans into an in-memory list; exports JSONL.

    Thread-safe: nesting is per-thread (a thread-local stack), record
    appends take a lock.  ``spans_started`` / ``spans_finished`` expose
    the open/close balance (the Hypothesis suite asserts every span
    opened is closed exactly once).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count()
        self.spans_started = 0
        self.spans_finished = 0

    # -- span lifecycle -------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Union[Span, _NoopSpan]:
        """Open a span (context manager).  No-op when disabled."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, attrs)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _open(self, span: Span) -> None:
        stack = self._stack()
        with self._lock:
            span.index = next(self._ids)
            self.spans_started += 1
        span.parent_index = stack[-1].index if stack else None
        span.depth = len(stack)
        span.thread = threading.current_thread().name
        stack.append(span)
        span.t0_s = time.time()
        span._t0_wall = time.perf_counter()
        span._t0_cpu = time.thread_time()

    def _close(self, span: Span) -> None:
        if span._closed:  # pragma: no cover - double-exit guard
            return
        span.wall_s = time.perf_counter() - span._t0_wall
        span.cpu_s = time.thread_time() - span._t0_cpu
        span._closed = True
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - unwound out of order
            stack.remove(span)
        record = {
            "i": span.index,
            "parent": span.parent_index,
            "name": span.name,
            "thread": span.thread,
            "depth": span.depth,
            "t0_s": span.t0_s,
            "wall_s": span.wall_s,
            "cpu_s": span.cpu_s,
            "status": span.status,
            "attrs": {k: _json_safe(v) for k, v in span.attrs.items()},
        }
        with self._lock:
            self._records.append(record)
            self.spans_finished += 1

    # -- inspection / export --------------------------------------------

    @property
    def records(self) -> List[Dict[str, Any]]:
        """A snapshot copy of the closed-span records."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def open_spans(self) -> int:
        """Spans currently open (started minus finished)."""
        with self._lock:
            return self.spans_started - self.spans_finished

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
            self.spans_started = 0
            self.spans_finished = 0

    def to_jsonl(self) -> str:
        """One JSON object per closed span, one per line."""
        return "".join(
            json.dumps(r, sort_keys=True) + "\n" for r in self.records
        )

    def write(self, path: Union[str, Path]) -> Path:
        """Dump the trace as JSONL to ``path``; returns the path."""
        p = Path(path)
        p.write_text(self.to_jsonl())
        return p


# ---------------------------------------------------------------------------
# Normalization (golden-trace support)
# ---------------------------------------------------------------------------


def parse_trace(
    source: Union[str, Path, Iterable[Dict[str, Any]]]
) -> List[Dict[str, Any]]:
    """Records from a JSONL string, a path, or an iterable of dicts.

    A plain string is treated as a filesystem path when it does not look
    like JSONL (no leading ``{``) and names an existing file; otherwise
    it is parsed as JSONL content.
    """
    if isinstance(source, Path):
        source = source.read_text()
    if isinstance(source, str):
        stripped = source.lstrip()
        if not stripped.startswith("{") and Path(source).is_file():
            source = Path(source).read_text()
        return [
            json.loads(line)
            for line in source.splitlines()
            if line.strip()
        ]
    return list(source)


def _round_sig(value: Any, sig: int = 12) -> Any:
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return float(f"{value:.{sig}g}")
    if isinstance(value, list):
        return [_round_sig(v, sig) for v in value]
    if isinstance(value, dict):
        return {k: _round_sig(v, sig) for k, v in value.items()}
    return value


def normalize_trace(
    source: Union[str, Path, Iterable[Dict[str, Any]]]
) -> str:
    """Canonical, timestamp-free rendering of a trace.

    Drops everything timing- or scheduling-dependent (timestamps,
    durations, thread names, span ids) and keeps what program logic
    determines: each span's ancestor *path* (``a/b/c``), name, status
    and attributes (floats rounded to 12 significant digits, the golden
    grain used across the repo).  Records are sorted on
    ``(path, attrs, status)`` and renumbered, so two runs of a
    deterministic program normalize to byte-identical text regardless of
    thread interleaving.
    """
    records = parse_trace(source)
    by_id = {r["i"]: r for r in records if r.get("i") is not None}

    def path(rec: Dict[str, Any]) -> str:
        names = [rec["name"]]
        seen = {rec.get("i")}
        parent = rec.get("parent")
        while parent is not None and parent in by_id and parent not in seen:
            seen.add(parent)
            rec = by_id[parent]
            names.append(rec["name"])
            parent = rec.get("parent")
        return "/".join(reversed(names))

    normalized = [
        {
            "path": path(r),
            "name": r["name"],
            "status": r.get("status", "ok"),
            "attrs": _round_sig(r.get("attrs", {})),
        }
        for r in records
    ]
    normalized.sort(
        key=lambda r: (
            r["path"],
            json.dumps(r["attrs"], sort_keys=True),
            r["status"],
        )
    )
    for i, r in enumerate(normalized):
        r["i"] = i
    return "".join(
        json.dumps(r, sort_keys=True) + "\n" for r in normalized
    )
