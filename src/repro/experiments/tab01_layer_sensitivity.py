"""Table I: model quality vs *which* layer range is quantized to 4-bit.

OPT-1.3B ranges (0-8, 8-16, 16-24) and BLOOM-3B ranges (0-10, 10-20,
20-30), unselected layers kept in FP16 — the paper finds quantizing
*early* layers hurts least.  A TinyLM-measured replica (layer thirds)
checks the same trend on a real model.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..models.architectures import get_model
from ..quant.indicator import layer_indicator
from ..quality.datasets import build_eval_corpora
from ..quality.perplexity import evaluate_assignment
from ..quality.quality_model import AnalyticQualityModel
from ..quality.tinylm import TinyLM, TinyLMConfig
from .harness import ExperimentResult

RANGES = {
    "opt-1.3b": ((0, 8), (8, 16), (16, 24)),
    "bloom-3b": ((0, 10), (10, 20), (20, 30)),
}


def _range_bits(num_layers: int, lo: int, hi: int, bits: int = 4) -> List[int]:
    out = [16] * num_layers
    for i in range(lo, hi):
        out[i] = bits
    return out


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    ra = np.argsort(np.argsort(a)).astype(float)
    rb = np.argsort(np.argsort(b)).astype(float)
    if ra.std() == 0 or rb.std() == 0:
        return 0.0
    return float(np.corrcoef(ra, rb)[0, 1])


def measured_layer_perturbations(
    model: TinyLM, tokens: np.ndarray, bits: int = 3
) -> List[float]:
    """Measured quantization output variance per layer (Prop. 1's target).

    For each linear operator of each layer, quantize the weight per-tensor
    (the granularity the indicator's scaling factor describes) and measure
    ``Var[(Q(W) - W) X]`` on the operator's true calibration inputs; sum
    over the layer's operators.
    """
    from ..quant.schemes import QuantConfig, quantize_dequantize

    captures = model.capture_layer_inputs(np.asarray(tokens))
    cfg = QuantConfig(bits=bits, symmetric=True, granularity="tensor")
    out: List[float] = []
    for lw, cap in zip(model.layers, captures):
        total = 0.0
        for name, x in cap.items():
            w = lw.linear(name)
            err = quantize_dequantize(w, cfg) - w
            total += float(np.var(err @ x))
        out.append(total)
    return out


def run(seed: int = 0) -> ExperimentResult:
    rows = []
    summary = {}
    for model_name, ranges in RANGES.items():
        spec = get_model(model_name)
        qm = AnalyticQualityModel.for_model(spec)
        ppls = []
        for lo, hi in ranges:
            bits = _range_bits(spec.num_layers, lo, hi)
            ppl = qm.avg_ppl(bits)
            acc = qm.accuracy(bits)
            ppls.append(ppl)
            rows.append([model_name, f"{lo}-{hi}", ppl, acc])
        summary[f"{model_name}_early_best"] = float(ppls[0] == min(ppls))

    # Measured replica on TinyLM: quantize each third of the layers and
    # report end-to-end PPL (a random-weight transformer need not share
    # trained LLMs' depth profile, so direction is informational only).
    model = TinyLM(TinyLMConfig(vocab=128, layers=6, hidden=64, ffn=192,
                                heads=4, max_seq=192, seed=seed))
    corpora = build_eval_corpora(model, n_seqs=6, seq_len=80)
    L = model.config.layers
    thirds = [(0, L // 3), (L // 3, 2 * L // 3), (2 * L // 3, L)]
    for lo, hi in thirds:
        bits = _range_bits(L, lo, hi, bits=3)
        rep = evaluate_assignment(model, bits, corpora)
        rows.append(["tinylm(measured)", f"{lo}-{hi}", rep.avg_ppl,
                     100.0 * rep.accuracy])

    # Proposition-1 validation on the real model: the indicator must rank
    # each layer's *measured* output perturbation correctly — the quantity
    # Theorem 1 bounds and the planner consumes.
    calib = corpora["c4"][:, :64]
    stats = model.layer_operator_stats(calib)
    measured = measured_layer_perturbations(model, calib, bits=3)
    omegas = [layer_indicator(stats[i], 3) for i in range(L)]
    rho = _spearman(np.array(omegas), np.array(measured))
    summary["tinylm_prop1_rank_corr"] = rho
    return ExperimentResult(
        name="tab01",
        title="Quality vs quantized layer range (unselected layers FP16)",
        headers=["model", "layers_4bit", "avg_ppl", "acc_%"],
        rows=rows,
        summary=summary,
        notes="Paper's shape: quantizing the earliest layer range is best.",
    )
