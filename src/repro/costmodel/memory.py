"""Memory cost model (paper Sec. IV-A).

Peak memory of a pipeline stage = quantized decoder-layer weights
+ KV-cache reservation for the maximum context (prompt ``s`` plus
generation budget ``n``) + peak activation workspace; the first stage
additionally holds the FP16 embeddings/LM head (``M_emb``, constraint 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..models.architectures import ModelSpec
from ..models import layers as L


def layer_memory_bytes(
    spec: ModelSpec,
    bits: int,
    batch: int,
    context: int,
    bit_kv: int = 16,
) -> int:
    """Weights + KV reservation of one decoder layer (paper's M_{i,b})."""
    if batch < 0 or context < 0:
        raise ValueError("batch and context must be non-negative")
    return L.weight_storage_bytes(spec, bits) + L.kv_cache_bytes(
        spec, batch, context, bit_kv
    )


def activation_workspace_bytes(
    spec: ModelSpec, microbatch: int, chunk_tokens: int
) -> int:
    """Peak transient activation storage of one stage.

    Worst case is a prefill chunk in flight: hidden states plus the MLP
    intermediate for ``microbatch * chunk_tokens`` tokens (FlashAttention
    avoids materializing the s^2 score matrix).
    """
    tokens = microbatch * max(chunk_tokens, 1)
    per_token = (4 * spec.hidden + 2 * spec.ffn) * L.FP16_BYTES
    return tokens * per_token


def embedding_memory_bytes(spec: ModelSpec, microbatch: int = 1) -> int:
    """``M_emb``: embeddings, LM head, and the logits workspace."""
    logits_ws = microbatch * spec.vocab_size * L.FP16_BYTES
    return L.embedding_bytes(spec) + logits_ws


@dataclass(frozen=True)
class MemoryCostModel:
    """Predicts stage memory for partition/quantization candidates."""

    spec: ModelSpec
    batch: int
    context: int
    bit_kv: int = 16
    chunk_tokens: int = 2048

    def layer_bytes(self, bits: int) -> int:
        return layer_memory_bytes(
            self.spec, bits, self.batch, self.context, self.bit_kv
        )

    def stage_bytes(
        self,
        bits_per_layer: Sequence[int],
        microbatch: int,
        with_embeddings: bool = False,
    ) -> int:
        """Predicted peak bytes of a stage holding the given layers."""
        total = sum(self.layer_bytes(b) for b in bits_per_layer)
        total += activation_workspace_bytes(
            self.spec, microbatch, min(self.chunk_tokens, self.context)
        )
        if with_embeddings:
            total += embedding_memory_bytes(self.spec, microbatch)
        return total

    def fits(
        self,
        bits_per_layer: Sequence[int],
        microbatch: int,
        capacity_bytes: int,
        with_embeddings: bool = False,
    ) -> bool:
        """Constraint (12)/(13): does the stage fit in ``capacity_bytes``?"""
        return (
            self.stage_bytes(bits_per_layer, microbatch, with_embeddings)
            <= capacity_bytes
        )
