"""Incremental re-solve: repair a previous plan instead of re-enumerating.

Fleet churn — a GPU dies, a job's workload changes — previously triggered
a full cold re-plan (ordering enumeration plus one solve per candidate).
This module warm-starts from the previous :class:`PlannerResult` instead:

- :class:`ClusterDelta` (GPUs removed): the first candidate is the
  plan-level degrade repair (bitwidths kept, layers re-partitioned over
  the surviving stage groups), scored through one batched fastsim sweep
  (:func:`~repro.pipeline.batchsim.evaluate_plans`).  Only when the
  repair is infeasible does a re-solve on the reduced cluster run — so
  the result is feasibility-equivalent to planning from scratch while the
  common case costs one DP repartition plus one simulation.
- :class:`JobDelta` (the workload changed): the previous plan's stage
  ordering is kept and only the (eta, xi) micro-batch grid is re-solved,
  each subproblem warm-started from the previous assignment via
  :func:`~repro.core.heuristic.bitwidth_transfer` — skipping ordering
  enumeration entirely.

Both paths stamp :attr:`PlannerResult.tier` with their provenance
(``"incremental-repair"`` / ``"incremental-resolve"``) and fall back to a
cold :meth:`SplitQuantPlanner.plan` when every warm candidate fails.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..obs import metrics, trace
from ..plan import ExecutionPlan, InfeasibleError
from ..workloads.spec import BatchWorkload
from .costs import StageGroup, build_problem
from .enumeration import microbatch_candidates
from .heuristic import bitwidth_transfer
from .ilp import ILPSolution
from .search import CandidateStat

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .planner import PlannerResult, SplitQuantPlanner

__all__ = ["ClusterDelta", "JobDelta", "replan_incremental"]


@dataclass(frozen=True)
class ClusterDelta:
    """The cluster lost these devices (GPU failure / reclamation)."""

    removed_device_ids: Tuple[int, ...]

    def __post_init__(self):
        if not self.removed_device_ids:
            raise ValueError("ClusterDelta needs at least one removed device")


@dataclass(frozen=True)
class JobDelta:
    """The job's workload changed; the cluster did not."""

    workload: BatchWorkload


def _plan_layer_arrays(plan: ExecutionPlan) -> Tuple[List[int], List[int]]:
    """Per-layer (stage index, bitwidth) in layer order."""
    n_layers = sum(len(st.layer_bits) for st in plan.stages)
    stage = [0] * n_layers
    bits = [0] * n_layers
    for j, st in enumerate(plan.stages):
        for i, b in enumerate(st.layer_bits):
            stage[st.layer_start + i] = j
            bits[st.layer_start + i] = b
    return stage, bits


def _plan_quality(planner: "SplitQuantPlanner", plan: ExecutionPlan) -> float:
    """Summed variance indicator of a concrete plan's bit assignment."""
    choices = planner.config.bit_choices
    bit_to_k = {b: k for k, b in enumerate(choices)}
    _, bits = _plan_layer_arrays(plan)
    total = 0.0
    for i, b in enumerate(bits):
        k = bit_to_k.get(b)
        if k is None:  # plan from another config: nearest not-above choice
            k = max(
                (kk for kk, bb in enumerate(choices) if bb <= b), default=0
            )
        total += float(planner.omega_layers[i, k])
    return total


def _result_from_repair(
    planner: "SplitQuantPlanner",
    plan: ExecutionPlan,
    makespan_s: float,
    workload: BatchWorkload,
    t0: float,
    reason: str,
) -> "PlannerResult":
    from .planner import PlannerResult

    quality = _plan_quality(planner, plan)
    key = tuple((st.gpu_name, len(st.device_ids)) for st in plan.stages)
    stat = CandidateStat(
        key,
        plan.prefill_microbatch,
        plan.decode_microbatch,
        "repair",
        makespan_s,
        quality,
        0.0,
    )
    n_tokens = workload.batch * workload.output_len
    return PlannerResult(
        plan=plan,
        predicted_latency_s=makespan_s,
        predicted_quality=quality,
        throughput_tokens_s=(
            n_tokens / makespan_s if makespan_s > 0 else 0.0
        ),
        solve_time_s=time.perf_counter() - t0,
        candidates_tried=1,
        stats=(stat,),
        search=None,
        tier="incremental-repair",
        tier_reason=reason,
        workload=workload,
    )


def _ordering_from_plan(
    planner: "SplitQuantPlanner", plan: ExecutionPlan
) -> Optional[Tuple[StageGroup, ...]]:
    """Rebuild the stage-group ordering a plan was expanded from."""
    gpu_by_name = {d.gpu.name: d.gpu for d in planner.cluster.devices}
    known = {d.device_id for d in planner.cluster.devices}
    groups: List[StageGroup] = []
    for st in plan.stages:
        gpu = gpu_by_name.get(st.gpu_name)
        if gpu is None or not set(st.device_ids) <= known:
            return None
        groups.append(StageGroup(device_ids=st.device_ids, gpu=gpu))
    return tuple(groups)


def _warm_solution(problem, plan: ExecutionPlan) -> Optional[ILPSolution]:
    """Map a previous plan onto a (possibly regrouped) problem.

    Each layer group inherits the stage of its first layer and the
    narrowest bitwidth inside the group (memory-safe direction).  ``None``
    when the mapping leaves a stage empty — the hill climb then builds a
    fresh adabits start instead.
    """
    layer_stage, layer_bits = _plan_layer_arrays(plan)
    if len(layer_stage) != sum(problem.group_sizes):
        return None
    choices = problem.bit_choices
    stage: List[int] = []
    bits: List[int] = []
    cursor = 0
    for size in problem.group_sizes:
        j = layer_stage[cursor]
        if j >= problem.n_stages:
            return None
        group_bits = min(layer_bits[cursor : cursor + size])
        snapped = max(
            (b for b in choices if b <= group_bits), default=choices[0]
        )
        stage.append(j)
        bits.append(snapped)
        cursor += size
    if set(stage) != set(range(problem.n_stages)):
        return None  # regrouping emptied a stage; start fresh
    return ILPSolution(
        assign_stage=tuple(stage),
        assign_bits=tuple(bits),
        objective=0.0,
        latency_s=0.0,
        quality=problem.quality_sum(tuple(bits)),
        solve_time_s=0.0,
        status="warm",
    )


def replan_incremental(
    planner: "SplitQuantPlanner",
    prev: "PlannerResult",
    delta,
    *,
    workload: Optional[BatchWorkload] = None,
) -> "PlannerResult":
    """Warm-started re-solve after a cluster or job delta.

    See the module docstring for the candidate ladder.  Raises
    :class:`InfeasibleError` when neither a repair nor a cold re-plan
    fits, so feasibility is equivalent to planning from scratch.
    """
    wl = workload if workload is not None else prev.workload
    if isinstance(delta, JobDelta):
        return _replan_job(planner, prev, delta.workload)
    if isinstance(delta, ClusterDelta):
        if wl is None:
            raise ValueError(
                "previous result carries no workload; pass workload="
            )
        return _replan_cluster(planner, prev, delta, wl)
    raise TypeError(
        f"delta must be ClusterDelta or JobDelta, got {type(delta).__name__}"
    )


def _replan_cluster(
    planner: "SplitQuantPlanner",
    prev: "PlannerResult",
    delta: ClusterDelta,
    workload: BatchWorkload,
) -> "PlannerResult":
    from .planner import _reduced_cluster, degrade_execution_plan_internal

    t0 = time.perf_counter()
    removed = set(delta.removed_device_ids)
    survivors = tuple(
        d.device_id
        for d in planner.cluster.devices
        if d.device_id not in removed
    )
    with trace.span(
        "planner.replan_incremental",
        kind="cluster",
        removed=len(removed),
        survivors=len(survivors),
    ) as sp:
        reduced = _reduced_cluster(planner.cluster, survivors)
        repaired: Optional[ExecutionPlan] = None
        try:
            repaired = degrade_execution_plan_internal(
                prev.plan, survivors, planner.cluster, planner.spec, workload
            )
        except InfeasibleError:
            repaired = None
        if repaired is not None:
            makespan = _score_plan(planner, repaired, reduced, workload)
            if makespan is not None:
                sp.set(path="repair")
                if trace.enabled:
                    metrics.counter("planner.replan_repairs").inc()
                return _result_from_repair(
                    planner,
                    repaired,
                    makespan,
                    workload,
                    t0,
                    reason=(
                        f"degrade repair after losing {sorted(removed)}"
                    ),
                )
        # Repair infeasible: re-solve on the survivors (tier routed by the
        # reduced instance size), cold-equivalent feasibility.
        sp.set(path="resolve")
        if trace.enabled:
            metrics.counter("planner.replan_resolves").inc()
        from .planner import SplitQuantPlanner

        reduced_planner = SplitQuantPlanner(
            planner.spec,
            reduced,
            planner.config,
            cost_model=planner.cost_model,
            omega_layers=planner.omega_layers,
        )
        result = reduced_planner.plan(workload)
        if result is None:
            raise InfeasibleError(
                "no feasible plan on surviving devices "
                f"{sorted(survivors)}"
            )
        return replace(
            result,
            tier="incremental-resolve",
            tier_reason="degrade repair infeasible; re-solved on survivors",
        )


def _score_plan(
    planner: "SplitQuantPlanner",
    plan: ExecutionPlan,
    cluster,
    workload: BatchWorkload,
) -> Optional[float]:
    """Batched-fastsim makespan of one repaired plan; ``None`` on failure."""
    from ..pipeline.batchsim import PlanCase, evaluate_plans
    from ..pipeline.stage import CostModelTiming

    timing = CostModelTiming(
        cost_model=planner.cost_model_for_kv(plan.bit_kv), spec=planner.spec
    )
    try:
        res = evaluate_plans(
            [PlanCase(plan, cluster, planner.spec, workload, timing)]
        )[0]
    except (ValueError, RuntimeError):
        return None
    return float(res.makespan_s)


def _replan_job(
    planner: "SplitQuantPlanner",
    prev: "PlannerResult",
    workload: BatchWorkload,
) -> "PlannerResult":
    cfg = planner.config
    t0 = time.perf_counter()
    with trace.span(
        "planner.replan_incremental",
        kind="job",
        batch=workload.batch,
        output_len=workload.output_len,
    ) as sp:
        ordering = _ordering_from_plan(planner, prev.plan)
        if ordering is None:
            # Plan predates this cluster (device renumbering): cold path.
            sp.set(path="cold")
            result = planner.plan(workload)
            if result is None:
                raise InfeasibleError("no feasible plan for new workload")
            return result
        theta = 0.0 if cfg.quality_budget is not None else cfg.theta
        bit_kv = prev.plan.bit_kv
        cost_model = planner.cost_model_for_kv(bit_kv)
        mbs = microbatch_candidates(workload.batch, cfg.microbatch_candidates)
        key = tuple(sg.key() for sg in ordering)
        stats: List[CandidateStat] = []
        candidates: List[tuple] = []
        for eta in mbs:
            for xi in mbs:
                if cfg.tie_microbatches and xi != eta:
                    continue
                problem = build_problem(
                    planner.spec,
                    planner.cluster,
                    ordering,
                    workload,
                    cost_model,
                    planner.omega_layers,
                    eta,
                    xi,
                    cfg.bit_choices,
                    group_size=cfg.group_size,
                    bit_kv=bit_kv,
                    phase_blind=cfg.phase_blind,
                )
                start = _warm_solution(problem, prev.plan)
                sol = bitwidth_transfer(
                    problem,
                    theta=theta,
                    quality_budget=cfg.quality_budget,
                    time_limit_s=cfg.time_limit_s,
                    start=start,
                )
                if sol is None:
                    stats.append(
                        CandidateStat(
                            key, eta, xi, "infeasible", 0.0, 0.0, 0.0
                        )
                    )
                    continue
                stats.append(
                    CandidateStat(
                        key,
                        eta,
                        xi,
                        sol.status,
                        sol.latency_s,
                        sol.quality,
                        sol.solve_time_s,
                    )
                )
                score = sol.latency_s + theta * sol.quality
                candidates.append(
                    (score, sol, ordering, problem.group_sizes,
                     eta, xi, bit_kv)
                )
        candidates.sort(key=lambda c: c[0])  # stable: ties keep loop order
        result = planner._finish(candidates, stats, workload, t0, search=None)
        if result is not None:
            sp.set(path="warm")
            if trace.enabled:
                metrics.counter("planner.replan_warm_jobs").inc()
            return replace(
                result,
                tier="incremental-resolve",
                tier_reason="warm-started on previous stage ordering",
            )
        # Previous ordering cannot serve the new workload: cold re-plan.
        sp.set(path="cold")
        result = planner.plan(workload)
        if result is None:
            raise InfeasibleError(
                "no feasible plan for the new workload on this cluster"
            )
        return result
