"""Tests for the fleet-level multi-job scheduler (``repro.fleet``).

Covers the ISSUE-4 invariants: inventory is never exceeded at any
instant of the timeline, scheduling is deterministic under a seed, the
beam allocator never loses to greedy on aggregate throughput, every
scheduled job's group is planner-feasible (Hypothesis), and the
kill-one-GPU reschedule differential.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fleet import (
    FleetJob,
    FleetScheduler,
    GroupSpec,
    PlannerPool,
    enumerate_groups,
    list_schedule,
    make_job_queue,
    simulate_schedule,
)
from repro.fleet.scheduler import compare_allocators, default_fleet_config
from repro.hardware.fleet import (
    HOURS_PER_MONTH,
    sample_fleet,
    schedulable_inventory,
)
from repro.pipeline.simulator import check_plan_memory
from repro.serialization import (
    fleet_result_from_dict,
    fleet_result_to_dict,
)
from repro.workloads import BatchWorkload

INVENTORY = {"V100-32G": 3, "T4-16G": 4, "P100-12G": 2}


def small_queue(n=4, seed=0):
    return make_job_queue(
        n_jobs=n, seed=seed, models=("opt-1.3b", "bloom-3b")
    )


@pytest.fixture(scope="module")
def schedules():
    """Greedy and beam schedules of the same queue (shared, expensive)."""
    return compare_allocators(small_queue(), INVENTORY)


# ---------------------------------------------------------------------------
# Job model
# ---------------------------------------------------------------------------


def test_job_queue_deterministic():
    assert make_job_queue(n_jobs=6, seed=3) == make_job_queue(
        n_jobs=6, seed=3
    )
    assert make_job_queue(n_jobs=6, seed=3) != make_job_queue(
        n_jobs=6, seed=4
    )


def test_job_validation():
    wl = BatchWorkload(batch=8, prompt_len=64, output_len=16)
    with pytest.raises(ValueError):
        FleetJob(job_id="", model="opt-1.3b", workload=wl)
    with pytest.raises(ValueError):
        FleetJob(job_id="j", model="opt-1.3b", workload=wl, num_batches=0)
    with pytest.raises(ValueError):
        FleetJob(
            job_id="j", model="opt-1.3b", workload=wl,
            deadline_class="nonsense",
        )


def test_job_sort_key_orders_by_deadline():
    wl = BatchWorkload(batch=8, prompt_len=64, output_len=16)
    urgent = FleetJob("a", "opt-1.3b", wl, deadline_class="urgent")
    batch = FleetJob("b", "opt-1.3b", wl, deadline_class="batch")
    assert urgent.sort_key() < batch.sort_key()


# ---------------------------------------------------------------------------
# Group enumeration + the list scheduler
# ---------------------------------------------------------------------------


def test_enumerate_groups_respects_inventory():
    groups = enumerate_groups(INVENTORY, max_gpus=4, max_types=2)
    assert groups
    for g in groups:
        assert g.total <= 4
        assert len(g.counts) <= 2
        assert g.fits(INVENTORY)
    # Deterministic and duplicate-free.
    assert list(groups) == list(
        enumerate_groups(INVENTORY, max_gpus=4, max_types=2)
    )
    assert len({g.counts for g in groups}) == len(groups)


def test_group_spec_validation():
    with pytest.raises(ValueError):
        GroupSpec(counts=())
    with pytest.raises(ValueError):
        GroupSpec(counts=(("T4-16G", 0),))
    with pytest.raises(ValueError):
        GroupSpec(counts=(("V100-32G", 1), ("A100-40G", 1)))  # unsorted


def _instant_usage(assignments, starts, ends, t):
    use: dict = {}
    for a, s, e in zip(assignments, starts, ends):
        if s <= t < e:
            for g, n in a.group.counts:
                use[g] = use.get(g, 0) + n
    return use


def test_list_schedule_never_exceeds_inventory(schedules):
    for sched in schedules.values():
        assignments = [sj.assignment for sj in sched.jobs]
        starts, ends, makespan = list_schedule(
            assignments, sched.inventory
        )
        probes = sorted(set(starts) | set(ends))
        for t in probes:
            use = _instant_usage(assignments, starts, ends, t)
            for g, n in use.items():
                assert n <= sched.inventory.get(g, 0), (t, g, use)
        assert makespan == max(ends)


def test_list_schedule_rejects_oversized_group():
    jobs = small_queue(1)
    pool = PlannerPool({"V100-32G": 2}, config=default_fleet_config())
    a = pool.evaluate(jobs[0], GroupSpec(counts=(("V100-32G", 2),)))
    assert a is not None
    with pytest.raises(ValueError):
        list_schedule([a], {"V100-32G": 1})


# ---------------------------------------------------------------------------
# Allocators
# ---------------------------------------------------------------------------


def test_schedule_deterministic_under_seed():
    a = FleetScheduler(INVENTORY, allocator="beam").schedule(small_queue())
    b = FleetScheduler(INVENTORY, allocator="beam").schedule(small_queue())
    assert [
        (sj.job.job_id, sj.group.counts, sj.start_s, sj.end_s)
        for sj in a.jobs
    ] == [
        (sj.job.job_id, sj.group.counts, sj.start_s, sj.end_s)
        for sj in b.jobs
    ]
    assert a.makespan_s == b.makespan_s


def test_parallel_pool_matches_serial():
    serial = FleetScheduler(
        INVENTORY, allocator="beam", parallelism=1
    ).schedule(small_queue())
    parallel = FleetScheduler(
        INVENTORY, allocator="beam", parallelism=4
    ).schedule(small_queue())
    assert [
        (sj.job.job_id, sj.group.counts) for sj in serial.jobs
    ] == [(sj.job.job_id, sj.group.counts) for sj in parallel.jobs]


def test_beam_at_least_greedy_on_aggregate_throughput(schedules):
    greedy, beam = schedules["greedy"], schedules["beam"]
    assert len(beam.jobs) >= len(greedy.jobs)
    assert beam.aggregate_tokens_s >= greedy.aggregate_tokens_s


def test_all_jobs_scheduled_and_plans_attached(schedules):
    for sched in schedules.values():
        assert not sched.unscheduled
        for sj in sched.jobs:
            assert sj.assignment.result.plan.num_stages >= 1
            assert sj.end_s > sj.start_s


def test_quality_slo_enforced():
    """Each plan's indicator sum respects the job's uniform-bits budget."""
    sched = FleetScheduler(INVENTORY, allocator="greedy").schedule(
        small_queue()
    )
    pool = PlannerPool(INVENTORY, config=default_fleet_config())
    for sj in sched.jobs:
        job = sj.job
        assert job.min_uniform_bits is not None
        omega = pool._omega(job.model)
        k = list(default_fleet_config().bit_choices).index(
            job.min_uniform_bits
        )
        budget = float(omega[:, k].sum())
        assert sj.assignment.result.predicted_quality <= budget + 1e-9


def test_unknown_allocator_rejected():
    with pytest.raises(ValueError):
        FleetScheduler(INVENTORY, allocator="quantum")


def test_empty_queue_rejected():
    with pytest.raises(ValueError):
        FleetScheduler(INVENTORY).schedule([])


def test_duplicate_job_ids_rejected():
    jobs = small_queue(2)
    dup = (jobs[0], jobs[0])
    with pytest.raises(ValueError):
        FleetScheduler(INVENTORY).schedule(dup)


def test_pool_memoizes_repeated_probes():
    pool = PlannerPool(INVENTORY, config=default_fleet_config())
    job = small_queue(1)[0]
    group = GroupSpec(counts=(("V100-32G", 2),))
    a = pool.evaluate(job, group)
    before = pool.evaluations
    b = pool.evaluate(job, group)
    assert pool.evaluations == before
    assert pool.cache_hits >= 1
    assert a is not None and b is not None
    assert a.result is b.result


# ---------------------------------------------------------------------------
# Hypothesis invariant: every scheduled group is planner-feasible
# ---------------------------------------------------------------------------


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10_000),
    n_jobs=st.integers(1, 3),
    v100=st.integers(1, 3),
    t4=st.integers(0, 3),
)
def test_scheduled_groups_planner_feasible(seed, n_jobs, v100, t4):
    """Any seed / queue / inventory: scheduled groups hold a real plan
    that passes the memory model on the materialized group cluster."""
    inventory = {"V100-32G": v100}
    if t4:
        inventory["T4-16G"] = t4
    jobs = make_job_queue(
        n_jobs=n_jobs, seed=seed, models=("opt-1.3b", "bloom-3b")
    )
    sched = FleetScheduler(inventory, allocator="greedy").schedule(jobs)
    from repro.models import get_model

    for sj in sched.jobs:
        assert sj.group.fits(inventory)
        cluster = sj.assignment.materialize_cluster("eth-800g")
        check_plan_memory(
            sj.assignment.result.plan,
            cluster,
            get_model(sj.job.model),
            sj.job.workload,
        )


# ---------------------------------------------------------------------------
# Kill-one-GPU reschedule differential
# ---------------------------------------------------------------------------


def test_reschedule_after_failure_differential(schedules):
    scheduler = FleetScheduler(INVENTORY, allocator="beam")
    before = schedules["beam"]
    victim = max(before.jobs, key=lambda sj: sj.group.total)
    dead_gpu = victim.group.counts[0][0]
    after = scheduler.reschedule_after_failure(
        before, victim.job.job_id, dead_gpu=dead_gpu
    )
    # The reclaimed GPU left the schedulable inventory.
    assert (
        after.inventory.get(dead_gpu, 0)
        == before.inventory[dead_gpu] - 1
    )
    # Every surviving group fits the reduced pool; the victim is either
    # degraded / reallocated (still scheduled) or explicitly dropped.
    for sj in after.jobs:
        assert sj.group.fits(after.inventory)
    victim_after = [
        sj for sj in after.jobs if sj.job.job_id == victim.job.job_id
    ]
    if victim_after:
        assert victim_after[0].group.total <= victim.group.total
    else:
        assert victim.job in after.unscheduled
    # Jobs unaffected by the failure keep their (group, plan) verbatim.
    unaffected_before = {
        sj.job.job_id: sj.assignment
        for sj in before.jobs
        if sj.job.job_id != victim.job.job_id
        and sj.group.fits(after.inventory)
    }
    for sj in after.jobs:
        prev = unaffected_before.get(sj.job.job_id)
        if prev is not None:
            assert sj.group.counts == prev.group.counts
            assert sj.assignment.result.plan == prev.result.plan
    # The repaired schedule still simulates end to end.
    sim = simulate_schedule(after)
    assert sim.makespan_s > 0


def test_reschedule_unknown_job_raises(schedules):
    scheduler = FleetScheduler(INVENTORY, allocator="beam")
    with pytest.raises(KeyError):
        scheduler.reschedule_after_failure(schedules["beam"], "no-such-job")


# ---------------------------------------------------------------------------
# Fleet simulation + Summary protocol + serialization
# ---------------------------------------------------------------------------


def test_simulate_schedule_composes_pipeline_sims(schedules):
    sim = simulate_schedule(schedules["beam"])
    assert len(sim.jobs) == len(schedules["beam"].jobs)
    assert sim.total_tokens == sum(r.total_tokens for r in sim.jobs)
    assert sim.makespan_s >= max(r.end_s for r in sim.jobs) - 1e-9
    for rec in sim.jobs:
        assert rec.batch_sim.makespan_s > 0
        assert rec.duration_s == pytest.approx(
            rec.num_batches * rec.batch_sim.makespan_s
        )


def test_fleet_result_is_summary(schedules):
    from repro.api import Summary

    sim = simulate_schedule(schedules["greedy"])
    assert isinstance(sim, Summary)
    assert sim.duration_s == sim.makespan_s
    assert sim.throughput_tokens_s > 0


def test_fleet_result_round_trip(schedules):
    sim = simulate_schedule(schedules["greedy"])
    d = sim.to_dict()
    blob = json.dumps(d, sort_keys=True)
    restored = fleet_result_from_dict(json.loads(blob))
    assert fleet_result_to_dict(restored) == d
    assert restored.total_tokens == sim.total_tokens
    assert restored.inventory == sim.inventory


def test_idle_recovery_accounting(schedules):
    stats = sample_fleet(n_gpus=2000, seed=0)
    sim = simulate_schedule(schedules["beam"])
    rec = sim.idle_recovery(stats)
    idle = stats.idle_gpu_hours(hours_per_month=HOURS_PER_MONTH)
    assert rec["total_idle_gpu_hours"] == pytest.approx(sum(idle.values()))
    assert 0.0 <= rec["reclaimed_fraction"] <= 1.0
    for g, row in rec["per_type"].items():
        assert row["reclaimed_gpu_hours"] <= row["idle_gpu_hours"] + 1e-9
        assert 0.0 <= row["pool_utilization"] <= 1.0


def test_schedulable_inventory_shape():
    stats = sample_fleet(n_gpus=2000, seed=0)
    inv = schedulable_inventory(stats, pool_gpus=24)
    assert sum(inv.values()) >= 24
    assert set(inv) <= set(stats.counts)
    with pytest.raises(ValueError):
        schedulable_inventory(stats, pool_gpus=0)


# ---------------------------------------------------------------------------
# Session façade
# ---------------------------------------------------------------------------


def test_session_schedule_fleet_facade():
    from repro import Session

    sess = Session("opt-1.3b", cluster=1)
    jobs = small_queue(2)
    sim = sess.schedule_fleet(
        jobs=jobs, inventory=INVENTORY, allocator="greedy"
    )
    assert sim.throughput_tokens_s > 0
    sched = sess.schedule_fleet(
        jobs=jobs, inventory=INVENTORY, allocator="greedy", simulate=False
    )
    assert {sj.job.job_id for sj in sched.jobs} == {
        j.job_id for j in jobs
    }


def test_session_schedule_fleet_traced(tmp_path, monkeypatch):
    from repro import Session
    from repro.obs import parse_trace

    # A warm persistent plan cache would skip the actual group planning
    # (and with it the fleet.plan_group span this test asserts on), so
    # point the cache at a private cold directory.
    monkeypatch.setenv("SPLITQUANT_CACHE_DIR", str(tmp_path / "cache"))

    path = tmp_path / "fleet.jsonl"
    sess = Session("opt-1.3b", cluster=1, trace_path=str(path))
    sess.schedule_fleet(
        jobs=small_queue(2), inventory=INVENTORY, allocator="greedy"
    )
    sess.close()
    names = {r["name"] for r in parse_trace(path)}
    assert "fleet.schedule" in names
    assert "fleet.plan_group" in names
    assert "fleet.simulate" in names
