"""SplitQuant reproduction: resource-efficient LLM offline serving on
heterogeneous GPUs via phase-aware model partition and adaptive
quantization (Zhao et al., CLUSTER 2025).

Quickstart (the :class:`repro.api.Session` façade)::

    from repro import Session, BatchWorkload

    sess = Session("opt-30b", cluster=5)    # 3x T4 + 1x V100
    wl = BatchWorkload(batch=32, prompt_len=512, output_len=100)
    result = sess.plan(wl)                  # PlannerResult
    sim = sess.simulate()                   # PipelineSimResult
    print(result.plan.describe(), sim.throughput_tokens_s)

Set ``trace_path="trace.jsonl"`` (or the ``SPLITQUANT_TRACE`` env var)
to capture a span trace of everything the session does; render it with
``scripts/trace_report.py``.  The lower-level pieces remain available::

    from repro import SplitQuantPlanner, PlannerConfig, simulate_plan

Subpackages: ``hardware`` (GPUs/clusters), ``models`` (architectures),
``simgpu`` (the simulated testbed), ``quant`` (quantization + indicators),
``quality`` (TinyLM + perplexity), ``costmodel``, ``pipeline`` (DES),
``workloads``, ``core`` (the planner), ``baselines``, ``runtime``
(threaded execution), ``experiments`` (per-figure reproduction).
"""

from .api import Session, Summary
from .core import PlannerConfig, PlannerResult, SplitQuantPlanner
from .fleet import (
    FleetJob,
    FleetSchedule,
    FleetScheduler,
    FleetSimResult,
    make_job_queue,
    simulate_schedule,
)
from .obs import Tracer, metrics, trace, use_tracer
from .hardware import (
    ClusterSpec,
    GPUSpec,
    get_gpu,
    make_cluster,
    table_iii_cluster,
)
from .models import ModelSpec, get_model, list_models
from .pipeline import (
    DegradedSimResult,
    PipelineSimResult,
    render_gantt,
    simulate_degraded,
    simulate_plan,
    simulate_plan_variable,
    trace_plan,
)
from .plan import ExecutionPlan, InfeasibleError, StagePlan, uniform_plan
from .runtime import FaultPlan, FaultSpec, PipelineEngine
from .serialization import load_plan, save_plan
from .workloads import (
    BatchWorkload,
    VariableBatchWorkload,
    WorkloadConfig,
    representative_workload,
)

__version__ = "1.0.0"

__all__ = [
    "Session",
    "Summary",
    "Tracer",
    "metrics",
    "trace",
    "use_tracer",
    "PlannerConfig",
    "PlannerResult",
    "SplitQuantPlanner",
    "FleetJob",
    "FleetSchedule",
    "FleetScheduler",
    "FleetSimResult",
    "make_job_queue",
    "simulate_schedule",
    "ClusterSpec",
    "GPUSpec",
    "get_gpu",
    "make_cluster",
    "table_iii_cluster",
    "ModelSpec",
    "get_model",
    "list_models",
    "DegradedSimResult",
    "PipelineSimResult",
    "render_gantt",
    "simulate_degraded",
    "simulate_plan",
    "simulate_plan_variable",
    "trace_plan",
    "load_plan",
    "save_plan",
    "ExecutionPlan",
    "InfeasibleError",
    "StagePlan",
    "uniform_plan",
    "FaultPlan",
    "FaultSpec",
    "PipelineEngine",
    "BatchWorkload",
    "VariableBatchWorkload",
    "WorkloadConfig",
    "representative_workload",
    "__version__",
]
