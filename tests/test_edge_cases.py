"""Edge cases across modules: failures, comm-bound pipelines, TP memory."""

import numpy as np
import pytest

from repro.hardware import make_cluster
from repro.models import get_model
from repro.pipeline import check_plan_memory, simulate_plan
from repro.plan import ExecutionPlan, StagePlan
from repro.workloads import BatchWorkload


def test_worker_failure_surfaces_in_engine(tiny_model, rng):
    """A poisoned stage must raise in generate(), not hang."""
    from repro.runtime import PipelineEngine

    plan = ExecutionPlan(
        model_name="tiny",
        stages=(
            StagePlan((0,), "T4-16G", 0, (8, 8)),
            StagePlan((1,), "T4-16G", 2, (8, 8)),
        ),
        prefill_microbatch=2,
        decode_microbatch=2,
    )
    prompts = rng.integers(0, tiny_model.config.vocab, size=(2, 8))
    with PipelineEngine(tiny_model, plan) as eng:
        # Sabotage stage 1's weights so its matmul raises.
        eng._workers[1].layers[0].wq = np.zeros((3, 3))
        with pytest.raises((RuntimeError, TimeoutError)):
            eng.generate(prompts, n_tokens=3)


def test_decode_feedback_dependency_enforced(small_cluster, opt13b):
    """Token t+1 of a micro-batch never starts before token t finished:
    with a single decode micro-batch the pipeline cannot overlap tokens,
    so decode span >= (n-1) * round-trip time."""
    groups = [((d.device_id,), d.gpu.name) for d in small_cluster.devices]
    from repro.plan import uniform_plan

    wl = BatchWorkload(batch=4, prompt_len=128, output_len=16)
    plan = uniform_plan(opt13b.name, opt13b.num_layers, groups, 8, 4, 4)
    res = simulate_plan(plan, small_cluster, opt13b, wl, check_memory=False)
    per_stage_busy_decode = [
        b for b in res.stage_busy_s
    ]
    # Round trip lower bound: decode work is serialized across stages.
    assert res.decode_span_s >= max(per_stage_busy_decode) * 0.2


def test_comm_bound_pipeline_bottleneck(opt13b):
    """With a crawling cross-node link, comm dominates the prefill span."""
    fast = make_cluster("fast", [("V100-32G", 1), ("V100-32G", 2)],
                        cross_node_link="eth-800g")
    slow = make_cluster("slow", [("V100-32G", 1), ("V100-32G", 2)],
                        cross_node_link="eth-100g")
    from repro.plan import uniform_plan

    wl = BatchWorkload(batch=16, prompt_len=1024, output_len=8)
    for cluster in (fast, slow):
        # Force the pipeline boundary across the Ethernet link.
        groups = [((0,), "V100-32G"), ((1, 2), "V100-32G")]
        plan = uniform_plan(opt13b.name, opt13b.num_layers, groups, 16, 2, 2)
        res = simulate_plan(plan, cluster, opt13b, wl, check_memory=False)
        if cluster is fast:
            t_fast = res.prefill_span_s
        else:
            t_slow = res.prefill_span_s
    assert t_slow > t_fast


def test_tp_group_memory_pools_capacity(opt30b):
    """A TP4 stage holds what no single device could."""
    cluster = make_cluster("tp4", [("T4-16G", 4)])
    wl = BatchWorkload(batch=8, prompt_len=256, output_len=32)
    pooled = ExecutionPlan(
        model_name=opt30b.name,
        stages=(
            StagePlan(tuple(range(4)), "T4-16G", 0, (16,) * opt30b.num_layers),
        ),
        prefill_microbatch=4,
        decode_microbatch=4,
    )
    usage = check_plan_memory(pooled, cluster, opt30b, wl)
    assert usage[0] > 16 * 2**30  # more than one T4's total memory


def test_single_layer_model_single_stage():
    spec = get_model("opt-125m")
    cluster = make_cluster("one", [("A100-40G", 1)])
    plan = ExecutionPlan(
        model_name=spec.name,
        stages=(
            StagePlan((0,), "A100-40G", 0, (16,) * spec.num_layers),
        ),
        prefill_microbatch=1,
        decode_microbatch=1,
    )
    wl = BatchWorkload(batch=1, prompt_len=16, output_len=2)
    res = simulate_plan(plan, cluster, spec, wl)
    assert res.throughput_tokens_s > 0


def test_planner_single_device_cluster(opt13b, small_workload):
    """Planning degenerates gracefully to quantization + micro-batching."""
    from repro.core import PlannerConfig, SplitQuantPlanner

    cluster = make_cluster("solo", [("V100-32G", 1)])
    cfg = PlannerConfig(group_size=8, max_orderings=2,
                        microbatch_candidates=(4, 8), time_limit_s=10.0,
                        verify_top_k=1)
    res = SplitQuantPlanner(opt13b, cluster, cfg).plan(small_workload)
    assert res is not None
    assert res.plan.num_stages == 1
    sim = simulate_plan(res.plan, cluster, opt13b, small_workload)
    assert sim.throughput_tokens_s > 0


def test_channel_pending_count():
    from repro.runtime import Channel

    ch = Channel("t")
    ch.send(1)
    ch.send(2)
    assert ch.pending == 2
    ch.recv(timeout=1.0)
    assert ch.pending == 1


# -- workload generator / micro-batch sizing edge cases ------------------


def test_empty_sample_means_are_zero_not_nan():
    """Context filtering can strip every request; stats must stay finite."""
    from repro.workloads.distributions import LengthSample, sample_dataset
    from repro.workloads.generator import filter_by_context

    spec = get_model("opt-13b")  # 2048-token context
    survivors = filter_by_context(sample_dataset("loogle", 64, 0), spec)
    assert survivors.n == 0
    assert survivors.mean_prompt() == 0.0
    assert survivors.mean_output() == 0.0


def test_synthesize_rejects_empty_after_filter():
    from repro.workloads import WorkloadConfig, synthesize_batches

    spec = get_model("opt-13b")
    with pytest.raises(ValueError, match="fits"):
        synthesize_batches(spec, WorkloadConfig(dataset="loogle"),
                           n_requests=64)


def test_representative_workload_caps_batch_at_survivors():
    """Fewer surviving requests than one configured batch: plan for the
    batch that exists, not the phantom configured size."""
    from repro.workloads import WorkloadConfig, representative_workload

    spec = get_model("opt-13b")
    cfg = WorkloadConfig(dataset="sharegpt", batch_size=256)
    wl = representative_workload(spec, cfg, n_requests=40)
    assert wl.batch <= 40
    assert wl.prompt_len + wl.output_len <= spec.max_position_embeddings


def test_microbatch_sizes_validation_and_small_totals():
    from repro.pipeline import microbatch_sizes

    assert microbatch_sizes(0, 8) == []
    assert microbatch_sizes(3, 8) == [3]  # burst smaller than one micro
    assert microbatch_sizes(16, 8) == [8, 8]
    assert microbatch_sizes(19, 8) == [8, 8, 3]
    with pytest.raises(ValueError):
        microbatch_sizes(8, 0)
    with pytest.raises(ValueError):
        microbatch_sizes(-1, 8)


def test_online_burst_smaller_than_microbatch(small_cluster, opt13b):
    """A lone arrival forms a group far below the plan's micro-batch;
    prefill and decode must run it as one undersized slice."""
    from repro.pipeline import OnlineConfig, simulate_online
    from repro.plan import uniform_plan
    from repro.workloads import ArrivalTrace, Request

    groups = [((d.device_id,), d.gpu.name) for d in small_cluster.devices]
    plan = uniform_plan(opt13b.name, opt13b.num_layers, groups, 8, 8, 8)
    trace = ArrivalTrace(
        requests=(
            Request(req_id=0, arrival_s=0.0, prompt_len=64, output_len=4),
        ),
        source="test",
    )
    res = simulate_online(plan, small_cluster, opt13b, trace,
                          config=OnlineConfig(chunk_tokens=2048))
    assert res.completed == 1
    assert res.groups_formed == 1
    assert res.total_tokens == 4
    assert len(res.ttft_s) == 1 and res.ttft_s[0] > 0.0
